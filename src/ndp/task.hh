/**
 * @file
 * The task abstraction processed by BEACON's PEs.
 *
 * The paper defines a task as "a DNA sequence to be processed with
 * related information, e.g., algorithm and current processing
 * status". A task alternates between compute phases on a PE and
 * memory waits: next() returns the compute cost of the step it just
 * performed plus the accesses whose operands the task needs before
 * it can continue. The Task Scheduler re-queues the task when every
 * operand has arrived.
 */

#ifndef BEACON_NDP_TASK_HH
#define BEACON_NDP_TASK_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/clock_domain.hh"

namespace beacon
{

/** Which application engine a task runs on (fixed-function PEs). */
enum class EngineKind : std::uint8_t
{
    FmIndex,
    HashIndex,
    KmerCounting,
    Prealign,
    // Section V extension engines (PE replacement): BEACON as a
    // general NDP platform for other memory-bound applications.
    GraphTraversal,
    IndexProbe,
};

/** Compute latency of one step on each engine, in DRAM cycles
 *  (Section VI-A of the paper: 16 / 10 / 59 / 82). */
constexpr Cycles
engineStepCycles(EngineKind kind)
{
    switch (kind) {
      case EngineKind::FmIndex:
        return Cycles{16};
      case EngineKind::HashIndex:
        return Cycles{10};
      case EngineKind::KmerCounting:
        return Cycles{59};
      case EngineKind::Prealign:
        return Cycles{82};
      case EngineKind::GraphTraversal:
        return Cycles{12};
      case EngineKind::IndexProbe:
        return Cycles{14};
    }
    return Cycles{16};
}

/** Logical data structures an access may target. */
enum class DataClass : std::uint8_t
{
    FmOcc,          //!< FM-index Occ blocks (fine-grained, random)
    HashBucket,     //!< hash-index bucket descriptors (fine, random)
    HashLocations,  //!< location lists (spatial locality)
    BloomCounter,   //!< global counting-Bloom counters (fine, RMW)
    BloomLocal,     //!< per-partition Bloom filters (multi-pass KMC)
    ReadData,       //!< input reads (streamed, spatial)
    RefWindow,      //!< reference windows (spatial)
    GraphOffsets,   //!< CSR offset array (fine, random)
    GraphEdges,     //!< CSR edge lists (spatial)
    IndexBuckets,   //!< database hash-bucket heads (fine, random)
    IndexNodes,     //!< database chain nodes (fine, random)
};

/** One memory access requested by a task step. */
struct AccessRequest
{
    DataClass data_class = DataClass::FmOcc;
    /** Byte offset within the data structure's logical space. */
    std::uint64_t offset = 0;
    Bytes bytes;
    bool is_write = false;
    /** Atomic read-modify-write (resolved by the Atomic Engine). */
    bool is_atomic = false;
    /** Owning tenant (units.hh TenantId); stamped by the NDP module
     *  from the task. */
    TenantId tenant;
    /** Orchestrator job id (0 = none); stamped by the NDP module
     *  from the task, forwarded hop by hop into the MemRequest so
     *  the request trace can attribute fabric/DRAM time. */
    std::uint64_t job = 0;
};

/** Result of advancing a task by one step. */
struct TaskStep
{
    bool done = false;
    /** PE-cycles consumed by the step's arithmetic. */
    Cycles compute_cycles;
    /** Operands to fetch/update before next() may be called again. */
    std::vector<AccessRequest> accesses;
};

/**
 * Interface implemented by the per-application task generators in
 * src/accel.
 */
class Task
{
  public:
    virtual ~Task() = default;

    /** Engine this task runs on. */
    virtual EngineKind engine() const = 0;

    /**
     * Advance the task. Must not be called again until every access
     * of the previous step has completed.
     */
    virtual TaskStep next() = 0;

    /** Tenant this task is accounted to (0 = untenanted). */
    virtual TenantId tenant() const { return untenanted_id; }

    /** Orchestrator job this task belongs to (0 = no request
     *  context); overridden by service::TenantTask. */
    virtual std::uint64_t jobId() const { return 0; }
};

using TaskPtr = std::unique_ptr<Task>;

} // namespace beacon

#endif // BEACON_NDP_TASK_HH
