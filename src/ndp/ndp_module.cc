#include "ndp_module.hh"

#include "common/logging.hh"
#include "obs/request_trace.hh"

namespace beacon
{

NdpModule::NdpModule(const std::string &name, EventQueue &eq,
                     StatRegistry &stats,
                     const NdpModuleParams &params, IssueFn issue_fn)
    : SimObject(name, eq, stats),
      p(params),
      issue(std::move(issue_fn)),
      stat_tasks(stat("tasksCompleted")),
      stat_accesses(stat("accessesIssued")),
      stat_steps(stat("steps")),
      stat_pe_busy(stat("peBusyTotalTicks"))
{
    BEACON_ASSERT(p.num_pes > 0, "NDP module needs at least one PE");
    BEACON_ASSERT(issue, "NDP module needs a memory path");
    if (obs::TraceSink *sink = BEACON_TRACE_SINK(eq)) {
        trace = sink;
        trace_mod = sink->track(name);
    }
}

unsigned
NdpModule::acquireSlot()
{
    for (unsigned i = 0; i < slot_busy.size(); ++i) {
        if (!slot_busy[i]) {
            slot_busy[i] = 1;
            return i;
        }
    }
    slot_busy.push_back(1);
    slot_tracks.push_back(trace->track(
        name() + ".slot" + std::to_string(slot_busy.size() - 1)));
    return unsigned(slot_busy.size() - 1);
}

void
NdpModule::submit(TaskPtr task, TaskDoneFn on_done)
{
    BEACON_ASSERT(canAccept(), "NDP module over capacity");
    eq.checkLaneTouch(p.home_hint, "NdpModule::submit");
    ++resident_tasks;
    auto pending = std::make_unique<PendingTask>();
    pending->task = std::move(task);
    pending->on_done = std::move(on_done);
    if (trace) {
        pending->slot = acquireSlot();
        pending->span = obs::TraceSpan(
            trace, slot_tracks[pending->slot], "task", submit_seq++);
        trace->counter(trace_mod, "resident",
                       double(resident_tasks));
    }
    ready_queue.push_back(std::move(pending));
    dispatch();
}

Counter &
NdpModule::tenantBusyStat(TenantId tenant)
{
    auto it = tenant_busy_stats.find(tenant);
    if (it == tenant_busy_stats.end()) {
        Counter &counter =
            stat("tenant" + std::to_string(tenant.value()) + ".peBusyTicks");
        it = tenant_busy_stats.emplace(tenant, &counter).first;
    }
    return *it->second;
}

void
NdpModule::dispatch()
{
    while (busy_pes < p.num_pes && !ready_queue.empty()) {
        std::unique_ptr<PendingTask> pending =
            std::move(ready_queue.front());
        ready_queue.pop_front();
        runStep(std::move(pending));
    }
}

void
NdpModule::finalizeCheck() const
{
    if (!p.checkers.ndp_accounting)
        return;
    BEACON_CHECK(resident_tasks == 0, name(), ": ", resident_tasks,
                 " tasks still resident at end of run");
    BEACON_CHECK(busy_pes == 0, name(), ": ", busy_pes,
                 " PEs still busy at end of run");
    BEACON_CHECK(accesses_completed == accesses_issued, name(),
                 ": access imbalance at end of run, ",
                 accesses_issued, " issued but ", accesses_completed,
                 " completed");
}

void
NdpModule::runStep(std::unique_ptr<PendingTask> pending)
{
    ++busy_pes;
    ++stat_steps;
    if (p.checkers.ndp_accounting) {
        BEACON_CHECK(busy_pes <= p.num_pes, name(),
                     ": PE overcommit, ", busy_pes, " busy of ",
                     p.num_pes);
        BEACON_CHECK(resident_tasks <= p.max_inflight_tasks, name(),
                     ": resident-task overflow, ", resident_tasks,
                     " of ", p.max_inflight_tasks);
    }
    const TenantId tid = pending->task->tenant();
    const std::uint64_t job = pending->task->jobId();
    const TaskStep step = pending->task->next();
    const Tick compute =
        cyclesToTicks(step.compute_cycles, p.pe_clock_ps);
    pe_busy_ticks += compute;
    pe_busy_by_tenant[tid] += compute;
    stat_pe_busy += double(compute);
    tenantBusyStat(tid) += double(compute);
    if (job != 0) {
        // Request context: the PE compute span is recorded at
        // schedule time with its future end (the sweep clips it to
        // the job's lifetime), and a flow step binds to the open
        // task slice so Perfetto draws the causal arrow chain.
        if (obs::RequestTrace *rt = BEACON_REQUEST_TRACE(eq)) {
            rt->recordSpan(job, obs::SpanKind::Pe, curTick(),
                           curTick() + compute);
        }
        if (trace)
            trace->flow(slot_tracks[pending->slot], "job", job, 't');
    }

    // The PE is occupied for the step's arithmetic; afterwards the
    // task either finishes, continues immediately, or parks in the
    // incoming queue until its operands arrive. The shared holder
    // keeps the callback copyable for std::function.
    auto held = std::make_shared<std::unique_ptr<PendingTask>>(
        std::move(pending));
    eq.scheduleIn(compute, [this, step, held, tid, job]() mutable {
        std::unique_ptr<PendingTask> pending = std::move(*held);
        --busy_pes;
        if (step.done) {
            BEACON_ASSERT(step.accesses.empty(),
                          "finished task requested operands");
            --resident_tasks;
            ++tasks_completed;
            ++stat_tasks;
            TaskDoneFn on_done = std::move(pending->on_done);
            if (trace) {
                slot_busy[pending->slot] = 0;
                trace->counter(trace_mod, "resident",
                               double(resident_tasks));
            }
            pending.reset();
            notifyDone(std::move(on_done));
            dispatch();
            return;
        }
        if (step.accesses.empty()) {
            // No operands needed: the task is immediately ready.
            ready_queue.push_back(std::move(pending));
            dispatch();
            return;
        }
        pending->outstanding_accesses =
            unsigned(step.accesses.size());
        // Hand the raw pointer around; ownership parks in a shared
        // holder until the last access completes.
        auto holder = std::make_shared<std::unique_ptr<PendingTask>>(
            std::move(pending));
        const Tick issue_tick = curTick();
        const bool check = p.checkers.ndp_accounting;
        for (const AccessRequest &raw : step.accesses) {
            ++accesses_issued;
            ++stat_accesses;
            // Stamp the owning tenant here so the memory path and
            // fabric attribute the access without trusting every
            // task generator to do it.
            AccessRequest req = raw;
            req.tenant = tid;
            req.job = job;
            issue(req, [this, holder, issue_tick, check](Tick t) {
                if (check) {
                    BEACON_CHECK(t >= issue_tick,
                                 name(),
                                 ": access completed at t=", t,
                                 " before it was issued at t=",
                                 issue_tick);
                }
                ++accesses_completed;
                PendingTask *pt = holder->get();
                BEACON_ASSERT(pt && pt->outstanding_accesses > 0,
                              "stray access completion");
                if (--pt->outstanding_accesses == 0)
                    operandsReady(std::move(*holder));
            });
        }
        dispatch();
    }, EventCat::Ndp, p.home_hint);
}

void
NdpModule::notifyDone(TaskDoneFn on_done)
{
    // The completion observers (per-task on_done, then the module
    // observer) belong to the host-side driver: they refill task
    // slots, account jobs, and poke the orchestrator — all default-
    // lane state. Model the completion interrupt's trip back to the
    // host as done_notify_delay and fire the observers in a hint-0
    // event, so a module homed on a worker lane never touches driver
    // state from its own lane. With delay 0 the observers run inline
    // (legacy behaviour, exercised by the DDR and in-switch systems).
    if (p.done_notify_delay == 0) {
        if (on_done)
            on_done();
        if (task_done)
            task_done();
        return;
    }
    eq.scheduleIn(p.done_notify_delay,
                  [this, done = std::move(on_done)] {
                      if (done)
                          done();
                      if (task_done)
                          task_done();
                  },
                  EventCat::Ndp);
}

void
NdpModule::operandsReady(std::unique_ptr<PendingTask> pending)
{
    ready_queue.push_back(std::move(pending));
    dispatch();
}

} // namespace beacon
