/**
 * @file
 * Fig. 1 / Section III motivation: the gap between intra-DIMM
 * memory bandwidth and inter-DIMM communication bandwidth that
 * bottlenecks the DDR-DIMM NDP baselines (quoted as 12x for MEDAL),
 * and the corresponding gap in the CXL pool.
 *
 * Measured directly on the substrates: a customised DIMM streaming
 * fine-grained 32 B reads at chip granularity across all ranks vs
 * the useful payload rate of 32 B messages over one DDR channel (two
 * hops, host store-forward), and a CXL-DIMM link for comparison.
 */

#include <cstdio>

#include "accel/ddr_fabric.hh"
#include "common/rng.hh"
#include "cxl/pool.hh"
#include "dram/controller.hh"

using namespace beacon;

namespace
{

/** Useful GB/s of fine-grained 32 B reads inside one NDP DIMM. */
double
intraDimmBandwidth()
{
    EventQueue eq;
    StatRegistry stats;
    DimmGeometry geom;
    geom.per_rank_lanes = true;
    geom.per_rank_cmd_bus = true;
    DramControllerParams params;
    params.enable_refresh = false;
    DramController ctrl("dimm", eq, stats, geom,
                        DramTimingParams::ddr4_1600_22(), params);
    // Bandwidth = peak rate: stream fine-grained reads round-robin
    // over every rank and chip group, row-hit within each bank.
    const unsigned n = 8192;
    for (unsigned i = 0; i < n; ++i) {
        MemRequest req;
        req.coord.rank = i % 4;
        req.coord.chip_first = ((i / 4) % 2) * 8;
        req.coord.bank_group = (i / 8) % 4;
        req.coord.bank = (i / 32) % 4;
        req.coord.row = RowId{7};
        req.coord.column = ((i / 128) * 8) % 1024;
        req.coord.chip_count = 8; // coalesced 32 B access
        req.bursts = 1;
        req.bytes = Bytes{32};
        ctrl.enqueue(std::move(req));
    }
    eq.run();
    return double(n) * 32.0 / ticksToSeconds(eq.now()) / 1e9;
}

/** Useful GB/s of 32 B DIMM-to-DIMM messages over one DDR channel. */
double
interDimmDdrBandwidth()
{
    EventQueue eq;
    StatRegistry stats;
    DdrFabricParams params;
    DdrFabric fabric("ddr", eq, stats, params);
    const unsigned n = 8192;
    unsigned remaining = n;
    for (unsigned i = 0; i < n; ++i) {
        fabric.send(NodeId::dimmNode(0, 0), NodeId::dimmNode(0, 1),
                    Bytes{32}, true,
                    [&remaining](Tick) { --remaining; });
    }
    eq.run();
    return double(n) * 32.0 / ticksToSeconds(eq.now()) / 1e9;
}

/** Useful GB/s of packed 32 B messages over one CXL DIMM link. */
double
interDimmCxlBandwidth()
{
    EventQueue eq;
    StatRegistry stats;
    PoolParams params;
    params.device_bias = true;
    params.packer.enabled = true;
    PoolFabric fabric("pool", eq, stats, params);
    const unsigned n = 8192;
    unsigned remaining = n;
    for (unsigned i = 0; i < n; ++i) {
        fabric.send(NodeId::dimmNode(0, 0), NodeId::dimmNode(0, 1),
                    Bytes{32}, true,
                    [&remaining](Tick) { --remaining; });
    }
    eq.run();
    return double(n) * 32.0 / ticksToSeconds(eq.now()) / 1e9;
}

} // namespace

int
main()
{
    std::printf("=== Fig. 1 / Section III: the communication "
                "bandwidth gap ===\n\n");
    const double intra = intraDimmBandwidth();
    const double inter_ddr = interDimmDdrBandwidth();
    const double inter_cxl = interDimmCxlBandwidth();

    std::printf("intra-DIMM fine-grained read bandwidth  %8.2f "
                "GB/s\n",
                intra);
    std::printf("inter-DIMM over one DDR channel         %8.2f "
                "GB/s (useful payload)\n",
                inter_ddr);
    std::printf("inter-DIMM over one CXL link (packed)   %8.2f "
                "GB/s (useful payload)\n\n",
                inter_cxl);
    std::printf("DDR gap  (intra / inter-DDR): %.1fx   "
                "(paper quotes 12x for MEDAL)\n",
                intra / inter_ddr);
    std::printf("CXL gap  (intra / inter-CXL): %.1fx   "
                "(BEACON's premise: CXL shrinks the gap)\n",
                intra / inter_cxl);
    return 0;
}
