/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses.
 *
 * Every bench prints the same series the paper reports, normalised
 * the same way (to the 48-thread CPU baseline and to the MEDAL/NEST
 * hardware baselines). Dataset sizes are scaled for simulator
 * tractability; set BEACON_BENCH_SCALE=<n> to multiply genome sizes
 * and read counts.
 *
 * Harnesses run their independent simulations through SweepRunner
 * (accel/sweep.hh): BEACON_BENCH_JOBS workers execute sweep points
 * concurrently, and results are merged in submission order so the
 * printed tables and emitted JSON are bit-identical to a serial run.
 * Every harness accepts `--json <path>` and writes the
 * beacon-bench-3 schema (see EXPERIMENTS.md); with
 * BEACON_BENCH_JSON_NO_WALL=1 the wall-clock fields are omitted so
 * two emissions of the same sweep compare byte-for-byte.
 */

#ifndef BEACON_BENCH_BENCH_UTIL_HH
#define BEACON_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "accel/cpu_baseline.hh"
#include "accel/experiment.hh"
#include "accel/sweep.hh"
#include "accel/system.hh"
#include "accel/workload.hh"
#include "common/logging.hh"
#include "sim/sharded_event_queue.hh"

namespace beacon::bench
{

/** Scale factor from BEACON_BENCH_SCALE (default 1). */
inline unsigned
benchScale()
{
    const char *env = std::getenv("BEACON_BENCH_SCALE");
    if (!env)
        return 1;
    const long v = std::strtol(env, nullptr, 10);
    return v >= 1 ? unsigned(v) : 1;
}

/** The five seeding presets at bench-tractable sizes. */
inline std::vector<genomics::DatasetPreset>
benchSeedingPresets()
{
    auto presets = genomics::seedingPresets();
    const unsigned scale = benchScale();
    for (auto &preset : presets) {
        preset.genome.length =
            std::max<std::size_t>(1u << 16,
                                  preset.genome.length / 4) *
            scale;
        // Enough tasks to saturate the NDP modules (steady state).
        preset.reads.num_reads = 1024 * scale;
    }
    return presets;
}

/** The k-mer counting preset at bench-tractable size. */
inline genomics::DatasetPreset
benchKmcPreset()
{
    genomics::DatasetPreset preset = genomics::kmerCountingPreset();
    preset.genome.length = (1u << 17) * benchScale();
    return preset;
}

/** Geometric mean of a series. */
inline double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0;
    double log_sum = 0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / double(values.size()));
}

/** Print one header cell / row cell with fixed width. */
inline void
printCell(const std::string &text, int width = 12)
{
    std::printf("%*s", width, text.c_str());
}

inline void
printHeader(const std::string &first,
            const std::vector<std::string> &columns, int width = 12)
{
    std::printf("%-14s", first.c_str());
    for (const auto &column : columns)
        printCell(column, width);
    std::printf("\n");
}

inline void
printRow(const std::string &label, const std::vector<double> &values,
         const char *format = "%.2fx", int width = 12)
{
    std::printf("%-14s", label.c_str());
    for (double v : values) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), format, v);
        printCell(buf, width);
    }
    std::printf("\n");
}

// ---------------------------------------------------------------
// Harness plumbing: arguments, timing, JSON emission
// ---------------------------------------------------------------

/** Options common to every harness. */
struct BenchOptions
{
    std::string json_path; //!< empty = no JSON emission
    /** Enumerate sweep points (one "dataset/label" line each)
     *  without running any simulation. */
    bool list = false;
    /** Regex over "dataset/label"; non-matching points are skipped
     *  (empty = run everything). */
    std::string filter;
    /** Directory for per-point Chrome traces ("" = tracing off). */
    std::string trace_dir;
    /** Directory for per-point time series ("" = sampling off). */
    std::string timeseries_dir;
    /** Sampling interval for --timeseries, in simulated ns. */
    std::uint64_t sample_interval_ns = 10000; // 10 us
    /** Report the host-side event-loop self-profile in the JSON. */
    bool self_profile = false;
    /** Directory for per-point request traces ("" = off). */
    std::string reqtrace_dir;
    /** SLO window-roll interval in simulated ns (0 = SLO off). */
    std::uint64_t slo_window_ns = 0;
    /** Flight-recorder dump path ("" = recorder off). */
    std::string flight_recorder;
};

/**
 * Parse the shared harness flags; exits with usage on anything else.
 * `--trace` / `--timeseries` take an optional directory (default:
 * the current directory) and write one file per executed sweep
 * point, named from the harness and the point's dataset/label — the
 * names are a pure function of the sweep, so reruns and different
 * BEACON_BENCH_JOBS values produce byte-identical artefacts.
 */
inline BenchOptions
parseBenchArgs(int argc, char **argv)
{
    BenchOptions opts;
    // The optional directory operand: consume argv[i+1] unless it is
    // absent or the next flag.
    const auto dir_operand = [&](int &i) -> std::string {
        if (i + 1 < argc && argv[i + 1][0] != '-')
            return argv[++i];
        return ".";
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            opts.json_path = argv[++i];
        } else if (arg == "--list") {
            opts.list = true;
        } else if (arg == "--filter" && i + 1 < argc) {
            opts.filter = argv[++i];
        } else if (arg == "--trace") {
            opts.trace_dir = dir_operand(i);
        } else if (arg == "--timeseries") {
            opts.timeseries_dir = dir_operand(i);
        } else if (arg == "--sample-interval-ns" && i + 1 < argc) {
            const long v = std::strtol(argv[++i], nullptr, 10);
            if (v >= 1)
                opts.sample_interval_ns = std::uint64_t(v);
        } else if (arg == "--self-profile") {
            opts.self_profile = true;
        } else if (arg == "--request-trace") {
            opts.reqtrace_dir = dir_operand(i);
        } else if (arg == "--slo-window-ns" && i + 1 < argc) {
            const long v = std::strtol(argv[++i], nullptr, 10);
            if (v >= 1)
                opts.slo_window_ns = std::uint64_t(v);
        } else if (arg == "--flight-recorder") {
            if (i + 1 < argc && argv[i + 1][0] != '-')
                opts.flight_recorder = argv[++i];
            else
                opts.flight_recorder = "beacon-flightrec.json";
        } else {
            std::fprintf(stderr,
                         "usage: %s [--json <path>] [--list] "
                         "[--filter <regex>] [--trace [dir]] "
                         "[--timeseries [dir]] "
                         "[--sample-interval-ns <n>] "
                         "[--self-profile] "
                         "[--request-trace [dir]] "
                         "[--slo-window-ns <n>] "
                         "[--flight-recorder [path]]\n",
                         argv[0]);
            std::exit(2);
        }
    }
    return opts;
}

/**
 * The per-machine telemetry configuration the flags ask for, layered
 * over the BEACON_TRACE / BEACON_TIMESERIES_NS / BEACON_SELF_PROFILE
 * environment (flags only ever turn features on).
 */
inline obs::ObsConfig
obsConfigFor(const BenchOptions &opts)
{
    obs::ObsConfig cfg = obs::ObsConfig::fromEnv();
    if (!opts.trace_dir.empty())
        cfg.trace = true;
    if (!opts.timeseries_dir.empty() && cfg.sample_interval == 0)
        cfg.sample_interval = opts.sample_interval_ns * 1000; // ->ps
    if (opts.self_profile)
        cfg.self_profile = true;
    if (!opts.reqtrace_dir.empty())
        cfg.request_trace = true;
    if (opts.slo_window_ns > 0 && cfg.slo_window == 0)
        cfg.slo_window = opts.slo_window_ns * 1000; // ns -> ps
    if (!opts.flight_recorder.empty() &&
        cfg.flight_recorder_path.empty())
        cfg.flight_recorder_path = opts.flight_recorder;
    return cfg;
}

/** "harness_dataset_label" with non-filename characters mapped to
 *  '-' — the deterministic per-point artefact stem. */
inline std::string
obsFileStem(const std::string &harness, const SweepKey &key)
{
    std::string stem = harness + "_" + key.dataset + "_" + key.label;
    for (char &c : stem)
        if (!std::isalnum(static_cast<unsigned char>(c)) &&
            c != '_' && c != '.')
            c = '-';
    return stem;
}

/**
 * End-of-point telemetry emission: stop sampling (while the machine
 * and any orchestrator series callbacks are still alive), write the
 * per-point trace / time-series files, and snapshot the self-profile
 * into the outcome. No stdout output — the determinism gates diff
 * harness stdout byte-for-byte.
 */
inline void
emitObsOutputs(NdpSystem &system, const BenchOptions &opts,
               const std::string &harness, const SweepKey &key,
               SweepOutcome &out)
{
    // DES lane distribution on stderr (BEACON_LANE_STATS=1): the
    // event-weighted lane shares behind the scaling numbers in
    // docs/simulation_model.md. Stderr so JSON/stdout stay
    // byte-identical with the flag on.
    if (std::getenv("BEACON_LANE_STATS")) {
        if (ShardedEventQueue *eq = system.shardedQueue()) {
            std::uint64_t total = eq->barrierEventsExecuted();
            for (unsigned l = 0; l < eq->lanes(); ++l)
                total += eq->laneEventsExecuted(l);
            std::fprintf(stderr, "[lane-stats] %s/%s: total=%llu",
                         harness.c_str(), key.label.c_str(),
                         (unsigned long long)total);
            for (unsigned l = 0; l < eq->lanes(); ++l) {
                const std::uint64_t n = eq->laneEventsExecuted(l);
                std::fprintf(
                    stderr, " lane%u=%llu(%.1f%%)", l,
                    (unsigned long long)n,
                    total ? 100.0 * double(n) / double(total) : 0.0);
            }
            std::fprintf(stderr, " guardViolations=%llu\n",
                         (unsigned long long)
                             eq->laneGuardViolations());
        }
    }
    obs::Observability *o = system.observability();
    if (!o)
        return;
    o->finish();
    // The JSON records the artefact names relative to the --trace /
    // --timeseries directory, keeping the report independent of
    // where the caller pointed the output (determinism diffs compare
    // reports from different directories).
    if (!opts.trace_dir.empty() && o->trace()) {
        out.trace_file = obsFileStem(harness, key) + ".trace.json";
        o->writeTrace(opts.trace_dir + "/" + out.trace_file);
    }
    if (!opts.timeseries_dir.empty() && o->sampler()) {
        out.timeseries_file =
            obsFileStem(harness, key) + ".timeseries.json";
        o->writeTimeseries(opts.timeseries_dir + "/" +
                           out.timeseries_file);
    }
    if (!opts.reqtrace_dir.empty() && o->requestTrace()) {
        out.reqtrace_file =
            obsFileStem(harness, key) + ".reqtrace.json";
        o->writeRequestTrace(opts.reqtrace_dir + "/" +
                             out.reqtrace_file);
    }
    if (o->selfProfiling())
        out.self_profile = o->selfProfile();
}

/**
 * enqueueRun with telemetry: the machine is built with the
 * flag-derived ObsConfig and the point's artefacts are emitted
 * before the outcome is returned.
 */
inline std::size_t
enqueueRunObs(SweepRunner &runner, const std::string &harness,
              const BenchOptions &opts, const SweepKey &key,
              SystemParams params, const Workload &workload,
              std::size_t tasks = 0)
{
    params.obs = obsConfigFor(opts);
    return runner.enqueue(
        key, [params, &workload, tasks, harness, opts,
              key](RunContext &) {
            SweepOutcome out;
            NdpSystem system(params, workload);
            out.result = system.run(tasks);
            emitObsOutputs(system, opts, harness, key, out);
            return out;
        });
}

/** Hand the sweep-point controls (--list / --filter) to a runner. */
inline void
applyBenchControls(SweepRunner &runner, const BenchOptions &opts)
{
    runner.setListOnly(opts.list);
    if (!opts.filter.empty())
        runner.setFilter(opts.filter);
}

/** Wall-clock stopwatch for the whole-harness timing field (the
 *  JSON wall_seconds value, excluded from determinism diffs).
 *  beacon-lint: allow-file(determinism-wallclock) */
class BenchTimer
{
  public:
    BenchTimer() : start(std::chrono::steady_clock::now()) {}

    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start;
};

/** Fresh report stamped with harness name, scale, and job count. */
inline SweepReport
makeReport(const char *harness, const SweepRunner &runner)
{
    SweepReport report;
    report.harness = harness;
    report.bench_scale = benchScale();
    report.jobs = runner.jobs();
    return report;
}

/**
 * Write the report to opts.json_path (if set). Honours
 * BEACON_BENCH_JSON_NO_WALL=1 by omitting the non-deterministic
 * wall-clock fields.
 */
inline void
emitJson(SweepReport &report, const BenchOptions &opts,
         const BenchTimer &timer)
{
    report.wall_seconds = timer.seconds();
    // List mode enumerates points; nothing ran, so nothing to emit.
    if (opts.json_path.empty() || opts.list)
        return;
    const char *no_wall = std::getenv("BEACON_BENCH_JSON_NO_WALL");
    const bool include_runtime =
        !(no_wall && no_wall[0] && no_wall[0] != '0');
    std::ofstream out(opts.json_path);
    if (!out)
        BEACON_FATAL("cannot open --json path '", opts.json_path,
                     "'");
    writeSweepJson(out, report, include_runtime);
    std::fprintf(stderr, "bench JSON written to %s\n",
                 opts.json_path.c_str());
}

// ---------------------------------------------------------------
// Ladder panels (Figs. 12/14/15)
// ---------------------------------------------------------------

/** Stat keys carried by the CPU-baseline pseudo-record. */
inline constexpr const char *cpu_seconds_key = "cpu.seconds";
inline constexpr const char *cpu_energy_key = "cpu.energy_pj";

/** Enqueue the analytic CPU baseline as one sweep job. */
inline std::size_t
enqueueCpuBaseline(SweepRunner &runner, const std::string &dataset,
                   const Workload &workload, bool kmc_single_pass)
{
    return runner.enqueue(
        {dataset, "cpu-48t"},
        [&workload, kmc_single_pass](RunContext &) {
            SweepOutcome out;
            const CpuBaselineResult cpu = cpuBaseline(
                measureFootprint(workload,
                                 WorkloadContext{kmc_single_pass, 0}));
            out.stats.emplace_back(cpu_seconds_key, cpu.seconds);
            out.stats.emplace_back(cpu_energy_key,
                                   cpu.energy_pj.value());
            return out;
        });
}

/** First stats value recorded under @p key (0 when absent). */
inline double
statOf(const SweepOutcome &outcome, const char *key)
{
    for (const auto &[name, value] : outcome.stats)
        if (name == key)
            return value;
    return 0;
}

/**
 * Print one step-by-step optimization panel (the shape of
 * Figs. 12/14/15): per dataset, speedup over the CPU baseline for
 * every ladder rung, the hardware baseline, the final-design ratio
 * over that baseline, and the fraction of the idealized design's
 * performance. A second table reports energy reduction over the CPU
 * baseline per rung.
 *
 * All (dataset x {cpu, rungs, baseline, ideal}) points run through
 * @p runner concurrently; the tables print from the merged outcomes
 * and are appended to @p report.
 */
inline void
ladderPanel(
    SweepRunner &runner, SweepReport &report,
    const BenchOptions &opts, const std::string &title,
    const std::vector<std::pair<std::string, const Workload *>>
        &datasets,
    const SystemParams &hw_baseline,
    const std::vector<LadderStep> &ladder, std::size_t tasks = 0)
{
    // Submission order per dataset: cpu, rungs..., baseline, ideal.
    const std::size_t stride = ladder.size() + 3;
    for (const auto &[name, workload] : datasets) {
        enqueueCpuBaseline(runner, name, *workload,
                           ladder.back().params.opts.kmc_single_pass);
        for (const LadderStep &step : ladder)
            enqueueRunObs(runner, report.harness, opts,
                          {name, step.label}, step.params, *workload,
                          tasks);
        enqueueRunObs(runner, report.harness, opts,
                      {name, hw_baseline.name}, hw_baseline,
                      *workload, tasks);
        enqueueRunObs(runner, report.harness, opts,
                      {name, ladder.back().params.name + "-ideal"},
                      ladder.back().params.idealized(), *workload,
                      tasks);
    }
    const std::vector<SweepOutcome> outcomes = runner.run();
    if (runner.listOnly()) {
        // Enumeration only: the points were printed by run().
        report.add(outcomes);
        return;
    }

    std::printf("--- %s ---\n", title.c_str());
    std::vector<std::string> columns;
    for (const LadderStep &step : ladder)
        columns.push_back(step.label);
    columns.push_back(hw_baseline.name);
    columns.push_back("final/base");
    columns.push_back("%of-ideal");
    printHeader("dataset", columns, 14);

    std::vector<std::string> printed_datasets;
    std::vector<std::vector<double>> energy_rows;
    std::vector<double> final_vs_base, pct_ideal;
    for (std::size_t d = 0; d < datasets.size(); ++d) {
        bool row_filtered = false;
        for (std::size_t s = 0; s < stride; ++s)
            row_filtered |= outcomes[d * stride + s].skipped;
        if (row_filtered)
            continue; // --filter removed part of this ladder
        const SweepOutcome &cpu = outcomes[d * stride];
        const double cpu_seconds = statOf(cpu, cpu_seconds_key);
        const double cpu_energy = statOf(cpu, cpu_energy_key);
        const SweepOutcome *rungs = &outcomes[d * stride + 1];
        const RunResult &final_run =
            rungs[ladder.size() - 1].result;
        const RunResult &base =
            outcomes[d * stride + 1 + ladder.size()].result;
        const RunResult &ideal =
            outcomes[d * stride + 2 + ladder.size()].result;

        std::vector<double> row, erow;
        for (std::size_t s = 0; s < ladder.size(); ++s) {
            row.push_back(cpu_seconds / rungs[s].result.seconds);
            erow.push_back(cpu_energy /
                           rungs[s].result.energy.totalPj().value());
        }
        row.push_back(cpu_seconds / base.seconds);
        const double vs_base =
            double(base.ticks) / double(final_run.ticks);
        row.push_back(vs_base);
        const double ideal_pct = 100.0 * double(ideal.ticks) /
                                 double(final_run.ticks);
        row.push_back(ideal_pct);
        final_vs_base.push_back(vs_base);
        pct_ideal.push_back(ideal_pct);
        printRow(datasets[d].first, row, "%.2f", 14);

        erow.push_back(cpu_energy / base.energy.totalPj().value());
        erow.push_back(base.energy.totalPj().value() /
                       final_run.energy.totalPj().value());
        erow.push_back(100.0 * ideal.energy.totalPj().value() /
                       final_run.energy.totalPj().value());
        energy_rows.push_back(std::move(erow));
        printed_datasets.push_back(datasets[d].first);
    }
    std::printf("%-14s final vs %s: %s (geomean), "
                "%.1f%% of idealized design\n",
                "summary", hw_baseline.name.c_str(),
                formatX(geomean(final_vs_base)).c_str(),
                geomean(pct_ideal));

    std::printf("\nenergy reduction vs CPU (and final/base, "
                "ideal%%):\n");
    printHeader("dataset", columns, 14);
    for (std::size_t i = 0; i < printed_datasets.size(); ++i)
        printRow(printed_datasets[i], energy_rows[i], "%.2f", 14);
    std::printf("\n");

    report.add(outcomes);
    report.derive(title + " :: final_vs_base_geomean",
                  geomean(final_vs_base));
    report.derive(title + " :: pct_of_ideal_geomean",
                  geomean(pct_ideal));
}

} // namespace beacon::bench

#endif // BEACON_BENCH_BENCH_UTIL_HH
