/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses.
 *
 * Every bench prints the same series the paper reports, normalised
 * the same way (to the 48-thread CPU baseline and to the MEDAL/NEST
 * hardware baselines). Dataset sizes are scaled for simulator
 * tractability; set BEACON_BENCH_SCALE=<n> to multiply genome sizes
 * and read counts.
 */

#ifndef BEACON_BENCH_BENCH_UTIL_HH
#define BEACON_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "accel/cpu_baseline.hh"
#include "accel/experiment.hh"
#include "accel/system.hh"
#include "accel/workload.hh"

namespace beacon::bench
{

/** Scale factor from BEACON_BENCH_SCALE (default 1). */
inline unsigned
benchScale()
{
    const char *env = std::getenv("BEACON_BENCH_SCALE");
    if (!env)
        return 1;
    const long v = std::strtol(env, nullptr, 10);
    return v >= 1 ? unsigned(v) : 1;
}

/** The five seeding presets at bench-tractable sizes. */
inline std::vector<genomics::DatasetPreset>
benchSeedingPresets()
{
    auto presets = genomics::seedingPresets();
    const unsigned scale = benchScale();
    for (auto &preset : presets) {
        preset.genome.length =
            std::max<std::size_t>(1u << 16,
                                  preset.genome.length / 4) *
            scale;
        // Enough tasks to saturate the NDP modules (steady state).
        preset.reads.num_reads = 1024 * scale;
    }
    return presets;
}

/** The k-mer counting preset at bench-tractable size. */
inline genomics::DatasetPreset
benchKmcPreset()
{
    genomics::DatasetPreset preset = genomics::kmerCountingPreset();
    preset.genome.length = (1u << 17) * benchScale();
    return preset;
}

/** Geometric mean of a series. */
inline double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0;
    double log_sum = 0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / double(values.size()));
}

/** Print one header cell / row cell with fixed width. */
inline void
printCell(const std::string &text, int width = 12)
{
    std::printf("%*s", width, text.c_str());
}

inline void
printHeader(const std::string &first,
            const std::vector<std::string> &columns, int width = 12)
{
    std::printf("%-14s", first.c_str());
    for (const auto &column : columns)
        printCell(column, width);
    std::printf("\n");
}

inline void
printRow(const std::string &label, const std::vector<double> &values,
         const char *format = "%.2fx", int width = 12)
{
    std::printf("%-14s", label.c_str());
    for (double v : values) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), format, v);
        printCell(buf, width);
    }
    std::printf("\n");
}

/** Run and normalise one ladder against a CPU baseline. */
struct LadderResult
{
    std::vector<double> speedup_vs_cpu;   //!< one per rung
    std::vector<double> energy_vs_cpu;    //!< CPU energy / rung energy
    std::vector<RunResult> runs;
};

inline LadderResult
runLadder(const std::vector<LadderStep> &ladder,
          const Workload &workload, const CpuBaselineResult &cpu,
          std::size_t tasks = 0)
{
    LadderResult out;
    for (const LadderStep &step : ladder) {
        const RunResult r = runSystem(step.params, workload, tasks);
        out.speedup_vs_cpu.push_back(cpu.seconds / r.seconds);
        out.energy_vs_cpu.push_back(cpu.energy_pj /
                                    r.energy.totalPj());
        out.runs.push_back(r);
    }
    return out;
}

/**
 * Print one step-by-step optimization panel (the shape of
 * Figs. 12/14/15): per dataset, speedup over the CPU baseline for
 * every ladder rung, the hardware baseline, the final-design ratio
 * over that baseline, and the fraction of the idealized design's
 * performance. A second table reports energy reduction over the CPU
 * baseline per rung.
 */
inline void
ladderPanel(
    const std::string &title,
    const std::vector<std::pair<std::string, const Workload *>>
        &datasets,
    const SystemParams &hw_baseline,
    const std::vector<LadderStep> &ladder, std::size_t tasks = 0)
{
    std::printf("--- %s ---\n", title.c_str());
    std::vector<std::string> columns;
    for (const LadderStep &step : ladder)
        columns.push_back(step.label);
    columns.push_back(hw_baseline.name);
    columns.push_back("final/base");
    columns.push_back("%of-ideal");
    printHeader("dataset", columns, 14);

    std::vector<std::vector<double>> energy_rows;
    std::vector<double> final_vs_base, pct_ideal;
    for (const auto &[name, workload] : datasets) {
        const CpuBaselineResult cpu = cpuBaseline(measureFootprint(
            *workload,
            WorkloadContext{ladder.back()
                                .params.opts.kmc_single_pass,
                            0}));
        const LadderResult lr =
            runLadder(ladder, *workload, cpu, tasks);
        const RunResult base =
            runSystem(hw_baseline, *workload, tasks);
        const RunResult ideal = runSystem(
            ladder.back().params.idealized(), *workload, tasks);

        std::vector<double> row = lr.speedup_vs_cpu;
        row.push_back(cpu.seconds / base.seconds);
        const double vs_base =
            double(base.ticks) / double(lr.runs.back().ticks);
        row.push_back(vs_base);
        const double ideal_pct = 100.0 * double(ideal.ticks) /
                                 double(lr.runs.back().ticks);
        row.push_back(ideal_pct);
        final_vs_base.push_back(vs_base);
        pct_ideal.push_back(ideal_pct);
        printRow(name, row, "%.2f", 14);

        std::vector<double> erow = lr.energy_vs_cpu;
        erow.push_back(cpu.energy_pj / base.energy.totalPj());
        erow.push_back(base.energy.totalPj() /
                       lr.runs.back().energy.totalPj());
        erow.push_back(100.0 * ideal.energy.totalPj() /
                       lr.runs.back().energy.totalPj());
        energy_rows.push_back(std::move(erow));
    }
    std::printf("%-14s final vs %s: %s (geomean), "
                "%.1f%% of idealized design\n",
                "summary", hw_baseline.name.c_str(),
                formatX(geomean(final_vs_base)).c_str(),
                geomean(pct_ideal));

    std::printf("\nenergy reduction vs CPU (and final/base, "
                "ideal%%):\n");
    printHeader("dataset", columns, 14);
    for (std::size_t i = 0; i < datasets.size(); ++i)
        printRow(datasets[i].first, energy_rows[i], "%.2f", 14);
    std::printf("\n");
}

} // namespace beacon::bench

#endif // BEACON_BENCH_BENCH_UTIL_HH
