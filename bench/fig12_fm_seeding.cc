/**
 * @file
 * Fig. 12 reproduction: FM-index based DNA seeding.
 *
 * (a,b) BEACON-D step-by-step performance and energy: CXL-vanilla ->
 * +data packing -> +memory access optimization -> +placement/address
 * mapping -> +multi-chip coalescing, against the 48-thread CPU and
 * MEDAL. (c,d) the same for BEACON-S (no coalescing rung).
 *
 * Paper: BEACON-D ends 4.36x over MEDAL at 96.52% of idealized;
 * BEACON-S ends 2.42x over MEDAL at 98.48% of idealized.
 */

#include <memory>

#include "bench_util.hh"

using namespace beacon;
using namespace beacon::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    const BenchTimer timer;
    std::printf("=== Fig. 12: FM-index based DNA seeding ===\n\n");

    std::vector<std::unique_ptr<FmSeedingWorkload>> owners;
    std::vector<std::pair<std::string, const Workload *>> datasets;
    for (const auto &preset : benchSeedingPresets()) {
        owners.push_back(std::make_unique<FmSeedingWorkload>(preset));
        datasets.emplace_back(preset.name, owners.back().get());
    }

    SweepRunner runner;
    applyBenchControls(runner, opts);
    SweepReport report = makeReport("fig12_fm_seeding", runner);

    ladderPanel(runner, report, opts,
                "Fig. 12(a,b): BEACON-D (speedup over 48-thread CPU)",
                datasets, SystemParams::medal(),
                beaconDLadder(/*with_coalescing=*/true));

    ladderPanel(runner, report, opts,
                "Fig. 12(c,d): BEACON-S (speedup over 48-thread CPU)",
                datasets, SystemParams::medal(),
                beaconSLadder(/*with_single_pass=*/false));

    std::printf("paper: BEACON-D 525.73x CPU / 4.36x MEDAL "
                "(96.52%% of ideal); BEACON-S 291.62x CPU / 2.42x "
                "MEDAL (98.48%% of ideal)\n");
    emitJson(report, opts, timer);
    return 0;
}
