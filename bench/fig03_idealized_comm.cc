/**
 * @file
 * Fig. 3 reproduction: performance and energy-efficiency improvement
 * of the previous DDR-DIMM accelerators (MEDAL for seeding, NEST for
 * k-mer counting) under imaginary idealized communication (infinite
 * bandwidth, zero latency).
 *
 * Paper reports on average 4.36x performance and 2.32x energy
 * efficiency — i.e., communication is their bottleneck.
 */

#include "bench_util.hh"

using namespace beacon;
using namespace beacon::bench;

int
main()
{
    std::printf("=== Fig. 3: DDR-DIMM baselines with idealized "
                "communication ===\n\n");
    printHeader("workload", {"real(us)", "ideal(us)", "perf-x",
                             "energy-x"});

    std::vector<double> perf_gains, energy_gains;
    auto report = [&](const std::string &label,
                      const SystemParams &params,
                      const Workload &workload) {
        const RunResult real = runSystem(params, workload, 0);
        const RunResult ideal =
            runSystem(params.idealized(), workload, 0);
        const double perf =
            double(real.ticks) / double(ideal.ticks);
        const double energy =
            real.energy.totalPj().value() / ideal.energy.totalPj().value();
        perf_gains.push_back(perf);
        energy_gains.push_back(energy);
        printRow(label,
                 {real.seconds * 1e6, ideal.seconds * 1e6, perf,
                  energy},
                 "%.2f");
    };

    const auto presets = benchSeedingPresets();
    for (const auto &preset : {presets[0], presets[2], presets[4]}) {
        FmSeedingWorkload fm(preset);
        report(std::string("MEDAL/fm/") + preset.name,
               SystemParams::medal(), fm);
        HashSeedingWorkload hash(preset);
        report(std::string("MEDAL/hash/") + preset.name,
               SystemParams::medal(), hash);
    }
    {
        KmerCountingWorkload kmc(benchKmcPreset());
        report("NEST/kmc", SystemParams::nest(), kmc);
    }

    std::printf("\n");
    printRow("geomean", {geomean(perf_gains), geomean(energy_gains)});
    std::printf("\npaper: 4.36x perf, 2.32x energy efficiency "
                "(average)\n");
    return 0;
}
