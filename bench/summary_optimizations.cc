/**
 * @file
 * Section VI-G reproduction: overall improvement delivered by the
 * proposed optimizations (CXL-vanilla -> fully optimized BEACON) in
 * performance, energy efficiency, and communication energy share,
 * for both BEACON-D and BEACON-S, averaged over the three ladder
 * applications.
 *
 * Paper: BEACON-D 2.21x perf / 3.70x energy, comm share 60.68% ->
 * 14.01%; BEACON-S 1.99x perf / 2.04x energy, comm share 52.35% ->
 * 13.17%.
 */

#include "bench_util.hh"

using namespace beacon;
using namespace beacon::bench;

namespace
{

void
summary(const char *design, const std::vector<LadderStep> &ladder,
        const std::vector<const Workload *> &workloads)
{
    std::vector<double> perf_gain, energy_gain;
    double comm_before = 0, comm_after = 0;
    for (const Workload *workload : workloads) {
        const RunResult vanilla =
            runSystem(ladder.front().params, *workload, 0);
        const RunResult full =
            runSystem(ladder.back().params, *workload, 0);
        perf_gain.push_back(double(vanilla.ticks) /
                            double(full.ticks));
        energy_gain.push_back(vanilla.energy.totalPj() /
                              full.energy.totalPj());
        comm_before += 100.0 * vanilla.energy.commFraction();
        comm_after += 100.0 * full.energy.commFraction();
    }
    const double n = double(workloads.size());
    std::printf("%-10s perf %s, energy %s, comm share %.2f%% -> "
                "%.2f%%\n",
                design, formatX(geomean(perf_gain)).c_str(),
                formatX(geomean(energy_gain)).c_str(),
                comm_before / n, comm_after / n);
}

} // namespace

int
main()
{
    std::printf("=== Section VI-G: improvements from the proposed "
                "optimizations ===\n\n");
    const auto presets = benchSeedingPresets();
    FmSeedingWorkload fm(presets[0]);
    HashSeedingWorkload hash(presets[2]);
    KmerCountingWorkload kmc(benchKmcPreset());
    const std::vector<const Workload *> workloads = {&fm, &hash,
                                                     &kmc};

    summary("BEACON-D", beaconDLadder(true), workloads);
    summary("BEACON-S", beaconSLadder(true), workloads);

    std::printf("\npaper: BEACON-D 2.21x perf / 3.70x energy, "
                "60.68%% -> 14.01%%; BEACON-S 1.99x perf / 2.04x "
                "energy, 52.35%% -> 13.17%%\n");
    return 0;
}
