/**
 * @file
 * Section VI-G reproduction: overall improvement delivered by the
 * proposed optimizations (CXL-vanilla -> fully optimized BEACON) in
 * performance, energy efficiency, and communication energy share,
 * for both BEACON-D and BEACON-S, averaged over the three ladder
 * applications.
 *
 * Paper: BEACON-D 2.21x perf / 3.70x energy, comm share 60.68% ->
 * 14.01%; BEACON-S 1.99x perf / 2.04x energy, comm share 52.35% ->
 * 13.17%.
 */

#include "bench_util.hh"

using namespace beacon;
using namespace beacon::bench;

namespace
{

void
summary(SweepRunner &runner, SweepReport &report, const char *design,
        const std::vector<LadderStep> &ladder,
        const std::vector<std::pair<std::string, const Workload *>>
            &workloads)
{
    // Submission order: per workload, vanilla then fully optimized.
    for (const auto &[name, workload] : workloads) {
        runner.enqueueRun({name, ladder.front().label},
                          ladder.front().params, *workload, 0);
        runner.enqueueRun({name, ladder.back().label},
                          ladder.back().params, *workload, 0);
    }
    const std::vector<SweepOutcome> outcomes = runner.run();
    if (runner.listOnly()) {
        report.add(outcomes);
        return;
    }

    std::vector<double> perf_gain, energy_gain;
    double comm_before = 0, comm_after = 0;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const RunResult &vanilla = outcomes[w * 2].result;
        const RunResult &full = outcomes[w * 2 + 1].result;
        perf_gain.push_back(double(vanilla.ticks) /
                            double(full.ticks));
        energy_gain.push_back(vanilla.energy.totalPj().value() /
                              full.energy.totalPj().value());
        comm_before += 100.0 * vanilla.energy.commFraction();
        comm_after += 100.0 * full.energy.commFraction();
    }
    const double n = double(workloads.size());
    std::printf("%-10s perf %s, energy %s, comm share %.2f%% -> "
                "%.2f%%\n",
                design, formatX(geomean(perf_gain)).c_str(),
                formatX(geomean(energy_gain)).c_str(),
                comm_before / n, comm_after / n);

    report.add(outcomes);
    report.derive(std::string(design) + " :: perf_geomean",
                  geomean(perf_gain));
    report.derive(std::string(design) + " :: energy_geomean",
                  geomean(energy_gain));
    report.derive(std::string(design) + " :: comm_share_before_pct",
                  comm_before / n);
    report.derive(std::string(design) + " :: comm_share_after_pct",
                  comm_after / n);
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    const BenchTimer timer;
    std::printf("=== Section VI-G: improvements from the proposed "
                "optimizations ===\n\n");
    const auto presets = benchSeedingPresets();
    FmSeedingWorkload fm(presets[0]);
    HashSeedingWorkload hash(presets[2]);
    KmerCountingWorkload kmc(benchKmcPreset());
    const std::vector<std::pair<std::string, const Workload *>>
        workloads = {{fm.name(), &fm},
                     {hash.name(), &hash},
                     {kmc.name(), &kmc}};

    SweepRunner runner;
    applyBenchControls(runner, opts);
    SweepReport report = makeReport("summary_optimizations", runner);

    summary(runner, report, "BEACON-D", beaconDLadder(true),
            workloads);
    summary(runner, report, "BEACON-S", beaconSLadder(true),
            workloads);

    std::printf("\npaper: BEACON-D 2.21x perf / 3.70x energy, "
                "60.68%% -> 14.01%%; BEACON-S 1.99x perf / 2.04x "
                "energy, 52.35%% -> 13.17%%\n");
    emitJson(report, opts, timer);
    return 0;
}
