/**
 * @file
 * Table I: the experimental configuration, as instantiated by this
 * reproduction (printed from the live preset structs so the table
 * cannot drift from the code).
 */

#include <cstdio>

#include "accel/system.hh"
#include "dram/timing.hh"

using namespace beacon;

int
main()
{
    std::printf("=== Table I: experimental configuration ===\n\n");

    std::printf("CPU baseline\n");
    std::printf("  processor/freq      Xeon E5-2680 v3 / 2.50 GHz "
                "(analytic model, 48 threads)\n\n");

    const SystemParams medal = SystemParams::medal();
    std::printf("MEDAL / NEST (DDR-DIMM NDP baselines)\n");
    std::printf("  channels x DIMMs    %u x %u (all customised)\n",
                medal.num_groups, medal.dimms_per_group);
    std::printf("  PEs per DIMM        %u\n", medal.pes_per_module);
    std::printf("  DDR channel         %.1f GB/s, %lu ns latency\n\n",
                medal.ddr.channel_gb_per_s,
                static_cast<unsigned long>(
                    medal.ddr.channel_latency / 1000));

    const SystemParams beacon_d = SystemParams::beaconD();
    std::printf("BEACON\n");
    std::printf("  CXL switches        %u, %u DIMMs each\n",
                beacon_d.num_groups, beacon_d.dimms_per_group);
    std::printf("  CXLG-DIMMs          %zu (BEACON-D), 0 "
                "(BEACON-S)\n",
                beacon_d.cxlg_dimms.size());
    std::printf("  PEs per NDP module  %u (BEACON-D), %u "
                "(BEACON-S)\n",
                beacon_d.pes_per_module,
                SystemParams::beaconS().pes_per_module);
    std::printf("  CXL DIMM link       %.1f GB/s per direction, "
                "%lu ns\n",
                beacon_d.pool.dimm_link.gb_per_s,
                static_cast<unsigned long>(
                    beacon_d.pool.dimm_link.latency / 1000));
    std::printf("  CXL host link       %.1f GB/s per direction, "
                "%lu ns\n\n",
                beacon_d.pool.host_link.gb_per_s,
                static_cast<unsigned long>(
                    beacon_d.pool.host_link.latency / 1000));

    const DimmGeometry geom;
    const DramTimingParams tp = DramTimingParams::ddr4_1600_22();
    std::printf("DIMM (both systems)\n");
    std::printf("  capacity            %llu GB (8 Gb x4 devices)\n",
                static_cast<unsigned long long>(
                    geom.capacityBytes() >> 30));
    std::printf("  ranks / chips       %u / %u per rank\n",
                geom.ranks, geom.chips_per_rank);
    std::printf("  bank groups/banks   %u / %u\n", geom.bank_groups,
                geom.banks_per_group);
    std::printf("  speed / timing      %.0f MT/s, %u-%u-%u\n",
                2e6 / double(tp.t_ck_ps), tp.t_cl, tp.t_rcd,
                tp.t_rp);
    return 0;
}
