/**
 * @file
 * google-benchmark microbenchmarks of the substrate components: DRAM
 * controller scheduling, pool fabric routing, Data Packer, FM-index
 * search, counting Bloom filter, and suffix-array construction.
 * These measure the simulator's own performance (host-side), which
 * bounds how large an experiment the benches can run.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "cxl/pool.hh"
#include "dram/controller.hh"
#include "genomics/bloom.hh"
#include "genomics/fm_index.hh"
#include "genomics/suffix_array.hh"

using namespace beacon;

namespace
{

void
BM_DramControllerRandomReads(benchmark::State &state)
{
    const bool custom = state.range(0) != 0;
    for (auto _ : state) {
        EventQueue eq;
        StatRegistry stats;
        DimmGeometry geom;
        geom.per_rank_lanes = custom;
        geom.per_rank_cmd_bus = custom;
        DramControllerParams params;
        params.enable_refresh = false;
        DramController ctrl("dimm", eq, stats, geom,
                            DramTimingParams::ddr4_1600_22(), params);
        Rng rng(1);
        for (int i = 0; i < 1024; ++i) {
            MemRequest req;
            req.coord.rank = unsigned(rng.next(4));
            req.coord.bank_group = unsigned(rng.next(4));
            req.coord.bank = unsigned(rng.next(4));
            req.coord.row = RowId{unsigned(rng.next(1u << 17))};
            req.coord.chip_count = 16;
            req.bursts = 1;
            ctrl.enqueue(std::move(req));
        }
        eq.run();
        benchmark::DoNotOptimize(ctrl.readsCompleted());
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_DramControllerRandomReads)->Arg(0)->Arg(1);

void
BM_PoolFabricMessages(benchmark::State &state)
{
    const bool packing = state.range(0) != 0;
    for (auto _ : state) {
        EventQueue eq;
        StatRegistry stats;
        PoolParams params;
        params.device_bias = true;
        params.packer.enabled = packing;
        PoolFabric fabric("pool", eq, stats, params);
        int pending = 2048;
        for (int i = 0; i < 2048; ++i) {
            fabric.send(NodeId::dimmNode(0, i % 4),
                        NodeId::dimmNode(1, (i + 1) % 4), Bytes{32},
                        true,
                        [&pending](Tick) { --pending; });
        }
        eq.run();
        benchmark::DoNotOptimize(pending);
    }
    state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_PoolFabricMessages)->Arg(0)->Arg(1);

void
BM_FmIndexBuild(benchmark::State &state)
{
    genomics::GenomeParams params;
    params.length = std::size_t(state.range(0));
    const genomics::DnaSequence genome = genomics::makeGenome(params);
    for (auto _ : state) {
        genomics::FmIndex index(genome);
        benchmark::DoNotOptimize(index.size());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FmIndexBuild)->Arg(1 << 12)->Arg(1 << 14)->Arg(1 << 16);

void
BM_FmIndexSearch(benchmark::State &state)
{
    genomics::GenomeParams gp;
    gp.length = 1 << 16;
    const genomics::DnaSequence genome = genomics::makeGenome(gp);
    const genomics::FmIndex index(genome);
    genomics::ReadParams rp;
    rp.num_reads = 64;
    rp.read_length = 32;
    const auto reads = genomics::makeReads(genome, rp);
    std::size_t i = 0;
    for (auto _ : state) {
        const auto range = index.search(reads[i % reads.size()]);
        benchmark::DoNotOptimize(range.count());
        ++i;
    }
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_FmIndexSearch);

void
BM_BloomFilterAdd(benchmark::State &state)
{
    genomics::CountingBloomFilter filter(1 << 20, 3);
    Rng rng(5);
    for (auto _ : state) {
        filter.add(rng());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomFilterAdd);

void
BM_SuffixArrayBuild(benchmark::State &state)
{
    genomics::GenomeParams params;
    params.length = std::size_t(state.range(0));
    const genomics::DnaSequence genome = genomics::makeGenome(params);
    for (auto _ : state) {
        auto sa = genomics::buildSuffixArray(genome);
        benchmark::DoNotOptimize(sa.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SuffixArrayBuild)->Arg(1 << 12)->Arg(1 << 15);

} // namespace

BENCHMARK_MAIN();
