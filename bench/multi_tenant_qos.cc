/**
 * @file
 * Multi-tenant QoS bench: several tenants sharing one BEACON-D pool
 * through the service orchestrator, swept over tenant count and
 * scheduling policy (FCFS, strict priority, weighted fair share).
 *
 * Each sweep point runs one shared NdpSystem in service mode: a
 * "bulk" tenant keeps several large FM-seeding jobs in flight while
 * latency-sensitive "small" hash-seeding tenants submit short jobs.
 * The interesting contrast: under FCFS the bulk tenant's queued
 * tasks starve the small tenants (p99 job latency inflates), strict
 * priority fixes the small tenants at the bulk tenant's expense, and
 * weighted fair share bounds the small tenants' p99 while keeping
 * the bulk tenant progressing.
 *
 * Per-tenant p50/p99/queueing/energy land in the JSON stats block
 * under "tenant<id>.*" keys; runs are bit-identical across
 * BEACON_BENCH_JOBS (every point owns its machine, and the
 * orchestrator is deterministic given its seed).
 */

#include "bench_util.hh"

#include "service/orchestrator.hh"

using namespace beacon;
using namespace beacon::bench;

namespace
{

/** A deliberately narrow machine so tenants contend for slots. */
SystemParams
serviceMachine()
{
    SystemParams params = SystemParams::beaconD();
    params.name = "BEACON-D (service)";
    params.pes_per_module = 8;
    params.max_inflight_tasks = 4;
    return params;
}

/** One sweep point: tenant mix size x scheduling policy. */
struct QosPoint
{
    const char *dataset;    //!< "small" / "wide" (mix preset)
    unsigned small_tenants; //!< latency-sensitive co-tenants
    SchedulerKind policy;
};

TenantSpec
bulkSpec(const Workload &workload)
{
    TenantSpec spec;
    spec.name = "bulk";
    spec.workload = &workload;
    spec.num_jobs = 12;
    spec.tasks_per_job = 8;
    spec.priority = 0;
    spec.weight = 1.0;
    spec.scratch_bytes_per_job = Bytes{1u << 20};
    spec.arrival.kind = ArrivalKind::ClosedLoop;
    spec.arrival.concurrency = 4;
    // Loose deadline: bulk work tolerates queueing (SLO monitoring
    // only engages with --slo-window-ns / BEACON_SLO_WINDOW_NS).
    spec.slo_ms = 50.0;
    return spec;
}

TenantSpec
smallSpec(const Workload &workload, unsigned index)
{
    TenantSpec spec;
    spec.name = "small" + std::to_string(index);
    spec.workload = &workload;
    spec.num_jobs = 8;
    spec.tasks_per_job = 2;
    spec.priority = 1;
    spec.weight = 4.0;
    spec.scratch_bytes_per_job = Bytes{1u << 18};
    spec.arrival.kind = ArrivalKind::ClosedLoop;
    spec.arrival.concurrency = 1;
    // Tight deadline: the latency-sensitive tenants are the ones
    // whose SLO burn the policy comparison is about.
    spec.slo_ms = 5.0;
    return spec;
}

SweepOutcome
runPoint(const SweepKey &key, const QosPoint &point,
         const BenchOptions &opts, const Workload &bulk,
         const Workload &small, std::uint64_t seed)
{
    SystemParams machine = serviceMachine();
    machine.obs = obsConfigFor(opts);
    NdpSystem system(machine);
    OrchestratorParams params;
    params.scheduler = point.policy;
    params.seed = seed;
    PoolOrchestrator orchestrator(system, params);

    if (orchestrator.addTenant(bulkSpec(bulk)) == untenanted_id)
        BEACON_PANIC("bulk tenant rejected: ",
                     orchestrator.lastError());
    for (unsigned i = 1; i <= point.small_tenants; ++i)
        if (orchestrator.addTenant(smallSpec(small, i)) ==
            untenanted_id)
            BEACON_PANIC("small tenant rejected: ",
                         orchestrator.lastError());

    const ServiceReport report = orchestrator.run();

    SweepOutcome out;
    out.key = key;
    out.result = report.machine;
    for (const TenantReport &tenant : report.tenants) {
        const std::string tag =
            "tenant" + std::to_string(tenant.tenant.value());
        out.stats.emplace_back(tag + ".p50_ms",
                               tenant.p50_latency_ms);
        out.stats.emplace_back(tag + ".p99_ms",
                               tenant.p99_latency_ms);
        out.stats.emplace_back(tag + ".mean_queue_ms",
                               tenant.mean_queue_ms);
        out.stats.emplace_back(tag + ".jobs_per_second",
                               tenant.jobs_per_second);
        out.stats.emplace_back(tag + ".jobs_completed",
                               double(tenant.jobs_completed));
        out.stats.emplace_back(tag + ".energy_pj",
                               tenant.energy_pj.value());
        // SLO burn and latency-breakdown columns only appear when
        // the telemetry that computes them ran, so the JSON stays
        // byte-identical with telemetry off (golden-enforced).
        if (tenant.has_slo) {
            out.stats.emplace_back(tag + ".slo_jobs",
                                   double(tenant.slo_jobs));
            out.stats.emplace_back(tag + ".slo_breaches",
                                   double(tenant.slo_breaches));
            out.stats.emplace_back(tag + ".slo_burn",
                                   tenant.slo_burn);
            out.stats.emplace_back(tag + ".slo_window_burn",
                                   tenant.slo_window_burn);
        }
        if (tenant.has_breakdown) {
            for (std::size_t k = 0; k < obs::num_span_kinds; ++k)
                out.stats.emplace_back(
                    tag + ".lat_" +
                        obs::spanKindName(obs::SpanKind(k)) +
                        "_ticks",
                    double(tenant.breakdown_ticks[k]));
            out.stats.emplace_back(
                tag + ".lat_total_ticks",
                double(tenant.breakdown_total_ticks));
        }
    }
    // Telemetry while the orchestrator (whose sampler series
    // callbacks reference it) is still alive.
    emitObsOutputs(system, opts, "multi_tenant_qos", key, out);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    const BenchTimer timer;
    std::printf("=== Multi-tenant QoS: shared pool, scheduler "
                "policies ===\n\n");

    // Bench-tractable tenant workloads; each service run re-reads
    // these const structures, so one instance serves every point.
    genomics::DatasetPreset bulk_preset = benchSeedingPresets()[0];
    bulk_preset.genome.length = 1u << 16;
    bulk_preset.reads.num_reads = 64;
    FmSeedingWorkload bulk(bulk_preset);

    genomics::DatasetPreset small_preset = benchSeedingPresets()[2];
    small_preset.genome.length = 1u << 15;
    small_preset.reads.num_reads = 32;
    HashSeedingWorkload small(small_preset);

    const std::vector<SchedulerKind> policies = {
        SchedulerKind::Fcfs, SchedulerKind::Priority,
        SchedulerKind::FairShare};
    std::vector<QosPoint> points;
    for (SchedulerKind policy : policies)
        points.push_back({"small", 1, policy});
    for (SchedulerKind policy : policies)
        points.push_back({"wide", 3, policy});

    SweepRunner runner;
    applyBenchControls(runner, opts);
    SweepReport report = makeReport("multi_tenant_qos", runner);

    for (const QosPoint &point : points) {
        const SweepKey key{point.dataset,
                           schedulerName(point.policy)};
        runner.enqueue(key, [&, point, key](RunContext &ctx) {
            return runPoint(key, point, opts, bulk, small,
                            0xBEACC0DEull ^ ctx.index);
        });
    }
    const std::vector<SweepOutcome> outcomes = runner.run();
    report.add(outcomes);
    if (runner.listOnly())
        return 0;

    // Per-policy comparison of the bulk tenant and the first small
    // tenant; the small tenant's p99 is the QoS headline.
    double fcfs_small_p99 = 0, fair_small_p99 = 0;
    for (std::size_t m = 0; m * policies.size() < points.size();
         ++m) {
        const QosPoint &mix = points[m * policies.size()];
        std::printf("--- mix '%s': 1 bulk + %u small tenant(s) "
                    "---\n",
                    mix.dataset, mix.small_tenants);
        printHeader("policy", {"bulk p99", "small p99", "small q",
                               "small j/s"});
        for (std::size_t s = 0; s < policies.size(); ++s) {
            const SweepOutcome &outcome =
                outcomes[m * policies.size() + s];
            if (outcome.skipped)
                continue;
            const double bulk_p99 = statOf(outcome,
                                           "tenant1.p99_ms");
            const double small_p99 = statOf(outcome,
                                            "tenant2.p99_ms");
            printRow(outcome.key.label,
                     {bulk_p99, small_p99,
                      statOf(outcome, "tenant2.mean_queue_ms"),
                      statOf(outcome, "tenant2.jobs_per_second")},
                     "%.4f");
            if (std::string(mix.dataset) == "wide") {
                if (policies[s] == SchedulerKind::Fcfs)
                    fcfs_small_p99 = small_p99;
                if (policies[s] == SchedulerKind::FairShare)
                    fair_small_p99 = small_p99;
            }
        }
        std::printf("\n");
    }

    if (fair_small_p99 > 0) {
        const double inflation = fcfs_small_p99 / fair_small_p99;
        std::printf("small-tenant p99 under FCFS vs fair share "
                    "(wide mix): %.2fx\n",
                    inflation);
        report.derive("small_p99_fcfs_over_fair", inflation);
    }

    emitJson(report, opts, timer);
    return 0;
}
