/**
 * @file
 * Fig. 13 reproduction: normalized memory access to different DRAM
 * chips during FM-index seeding on BEACON-D, (a) without and (b)
 * with multi-chip coalescing.
 *
 * Paper: without coalescing the per-chip distribution is strongly
 * unbalanced; with coalescing it is well balanced.
 */

#include "bench_util.hh"

using namespace beacon;
using namespace beacon::bench;

namespace
{

void
histogram(const char *title, const RunResult &result)
{
    std::printf("--- %s ---\n", title);
    double mean = 0;
    for (double v : result.chip_accesses)
        mean += v;
    mean /= double(result.chip_accesses.size());
    for (std::size_t chip = 0; chip < result.chip_accesses.size();
         ++chip) {
        const double norm = result.chip_accesses[chip] / mean;
        std::printf("chip %2zu  %6.3f  ", chip, norm);
        const int bars = int(norm * 24);
        for (int i = 0; i < bars; ++i)
            std::printf("#");
        std::printf("\n");
    }
    std::printf("coefficient of variation: %.3f\n\n",
                result.chip_access_cov);
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    const BenchTimer timer;
    std::printf("=== Fig. 13: per-chip access balance, FM-index "
                "seeding on BEACON-D ===\n\n");
    // The repeat-heavy Pt preset exhibits the hot-block skew.
    const auto preset = benchSeedingPresets()[0];
    FmSeedingWorkload workload(preset);

    SweepRunner runner;
    applyBenchControls(runner, opts);
    SweepReport report = makeReport("fig13_chip_balance", runner);

    SystemParams fine = SystemParams::beaconD();
    fine.opts.coalesce_chips = 1;
    fine.name = "BEACON-D (no coalescing)";
    runner.enqueueRun({preset.name, "no-coalescing"}, fine, workload,
                      0);
    runner.enqueueRun({preset.name, "coalescing-8"},
                      SystemParams::beaconD(), workload, 0);
    const std::vector<SweepOutcome> outcomes = runner.run();
    if (runner.listOnly()) {
        report.add(outcomes);
        return 0;
    }

    histogram("(a) without multi-chip coalescing",
              outcomes[0].result);
    histogram("(b) with multi-chip coalescing (8 chips)",
              outcomes[1].result);

    std::printf("paper: (a) unevenly distributed accesses, (b) "
                "well-balanced accesses\n");
    report.add(outcomes);
    report.derive("cov_without_coalescing",
                  outcomes[0].result.chip_access_cov);
    report.derive("cov_with_coalescing",
                  outcomes[1].result.chip_access_cov);
    emitJson(report, opts, timer);
    return 0;
}
