/**
 * @file
 * Fig. 13 reproduction: normalized memory access to different DRAM
 * chips during FM-index seeding on BEACON-D, (a) without and (b)
 * with multi-chip coalescing.
 *
 * Paper: without coalescing the per-chip distribution is strongly
 * unbalanced; with coalescing it is well balanced.
 */

#include "bench_util.hh"

using namespace beacon;
using namespace beacon::bench;

namespace
{

void
histogram(const char *title, const RunResult &result)
{
    std::printf("--- %s ---\n", title);
    double mean = 0;
    for (double v : result.chip_accesses)
        mean += v;
    mean /= double(result.chip_accesses.size());
    for (std::size_t chip = 0; chip < result.chip_accesses.size();
         ++chip) {
        const double norm = result.chip_accesses[chip] / mean;
        std::printf("chip %2zu  %6.3f  ", chip, norm);
        const int bars = int(norm * 24);
        for (int i = 0; i < bars; ++i)
            std::printf("#");
        std::printf("\n");
    }
    std::printf("coefficient of variation: %.3f\n\n",
                result.chip_access_cov);
}

} // namespace

int
main()
{
    std::printf("=== Fig. 13: per-chip access balance, FM-index "
                "seeding on BEACON-D ===\n\n");
    // The repeat-heavy Pt preset exhibits the hot-block skew.
    const auto preset = benchSeedingPresets()[0];
    FmSeedingWorkload workload(preset);

    SystemParams fine = SystemParams::beaconD();
    fine.opts.coalesce_chips = 1;
    fine.name = "BEACON-D (no coalescing)";
    const RunResult without = runSystem(fine, workload, 0);
    histogram("(a) without multi-chip coalescing", without);

    const RunResult with_coalescing =
        runSystem(SystemParams::beaconD(), workload, 0);
    histogram("(b) with multi-chip coalescing (8 chips)",
              with_coalescing);

    std::printf("paper: (a) unevenly distributed accesses, (b) "
                "well-balanced accesses\n");
    return 0;
}
