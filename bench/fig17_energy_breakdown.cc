/**
 * @file
 * Fig. 17 reproduction: energy breakdown (communication / DRAM / PE)
 * of BEACON-D and BEACON-S at each optimization step, averaged over
 * the three ladder applications (FM seeding, hash seeding, k-mer
 * counting).
 *
 * Paper: in CXL-vanilla communication dominates (60.68% D, 52.35%
 * S); the optimizations cut the communication share to 14.01% (D)
 * and 13.17% (S); computation stays below 1%.
 */

#include <memory>

#include "bench_util.hh"

using namespace beacon;
using namespace beacon::bench;

namespace
{

void
breakdownPanel(const char *title,
               const std::vector<LadderStep> &ladder,
               const std::vector<const Workload *> &workloads)
{
    std::printf("--- %s ---\n", title);
    printHeader("step", {"comm %", "dram %", "PE %"}, 10);
    for (const LadderStep &step : ladder) {
        double comm = 0, dram = 0, pe = 0;
        for (const Workload *workload : workloads) {
            const RunResult r = runSystem(step.params, *workload, 0);
            const double total = r.energy.totalPj();
            comm += 100.0 * r.energy.comm_pj / total;
            dram += 100.0 * r.energy.dram_pj / total;
            pe += 100.0 * r.energy.pe_pj / total;
        }
        const double n = double(workloads.size());
        printRow(step.label, {comm / n, dram / n, pe / n}, "%.2f",
                 10);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("=== Fig. 17: energy breakdown by optimization "
                "step ===\n\n");

    const auto presets = benchSeedingPresets();
    FmSeedingWorkload fm(presets[0]);
    HashSeedingWorkload hash(presets[2]);
    KmerCountingWorkload kmc(benchKmcPreset());
    const std::vector<const Workload *> workloads = {&fm, &hash,
                                                     &kmc};

    breakdownPanel("(a) BEACON-D", beaconDLadder(true), workloads);
    breakdownPanel("(b) BEACON-S", beaconSLadder(true), workloads);

    std::printf("paper: vanilla comm share 60.68%% (D) / 52.35%% "
                "(S); fully optimized 14.01%% / 13.17%%; compute "
                "<1%%\n");
    return 0;
}
