/**
 * @file
 * Fig. 17 reproduction: energy breakdown (communication / DRAM / PE)
 * of BEACON-D and BEACON-S at each optimization step, averaged over
 * the three ladder applications (FM seeding, hash seeding, k-mer
 * counting).
 *
 * Paper: in CXL-vanilla communication dominates (60.68% D, 52.35%
 * S); the optimizations cut the communication share to 14.01% (D)
 * and 13.17% (S); computation stays below 1%.
 */

#include <memory>

#include "bench_util.hh"

using namespace beacon;
using namespace beacon::bench;

namespace
{

void
breakdownPanel(SweepRunner &runner, SweepReport &report,
               const char *title,
               const std::vector<LadderStep> &ladder,
               const std::vector<std::pair<std::string,
                                           const Workload *>>
                   &workloads)
{
    // Submission order: for each rung, every workload.
    for (const LadderStep &step : ladder)
        for (const auto &[name, workload] : workloads)
            runner.enqueueRun({name, step.label}, step.params,
                              *workload, 0);
    const std::vector<SweepOutcome> outcomes = runner.run();
    if (runner.listOnly()) {
        report.add(outcomes);
        return;
    }

    std::printf("--- %s ---\n", title);
    printHeader("step", {"comm %", "dram %", "PE %"}, 10);
    const double n = double(workloads.size());
    for (std::size_t s = 0; s < ladder.size(); ++s) {
        double comm = 0, dram = 0, pe = 0;
        for (std::size_t w = 0; w < workloads.size(); ++w) {
            const RunResult &r =
                outcomes[s * workloads.size() + w].result;
            const double total = r.energy.totalPj().value();
            comm += 100.0 * r.energy.comm_pj.value() / total;
            dram += 100.0 * r.energy.dram_pj.value() / total;
            pe += 100.0 * r.energy.pe_pj.value() / total;
        }
        printRow(ladder[s].label, {comm / n, dram / n, pe / n},
                 "%.2f", 10);
        if (s == 0 || s + 1 == ladder.size())
            report.derive(std::string(title) + " :: " +
                              ladder[s].label + " comm_share_pct",
                          comm / n);
    }
    std::printf("\n");
    report.add(outcomes);
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    const BenchTimer timer;
    std::printf("=== Fig. 17: energy breakdown by optimization "
                "step ===\n\n");

    const auto presets = benchSeedingPresets();
    FmSeedingWorkload fm(presets[0]);
    HashSeedingWorkload hash(presets[2]);
    KmerCountingWorkload kmc(benchKmcPreset());
    const std::vector<std::pair<std::string, const Workload *>>
        workloads = {{fm.name(), &fm},
                     {hash.name(), &hash},
                     {kmc.name(), &kmc}};

    SweepRunner runner;
    applyBenchControls(runner, opts);
    SweepReport report = makeReport("fig17_energy_breakdown", runner);

    breakdownPanel(runner, report, "(a) BEACON-D", beaconDLadder(true),
                   workloads);
    breakdownPanel(runner, report, "(b) BEACON-S", beaconSLadder(true),
                   workloads);

    std::printf("paper: vanilla comm share 60.68%% (D) / 52.35%% "
                "(S); fully optimized 14.01%% / 13.17%%; compute "
                "<1%%\n");
    emitJson(report, opts, timer);
    return 0;
}
