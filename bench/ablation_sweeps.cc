/**
 * @file
 * Ablation benches for the design choices DESIGN.md calls out:
 *
 *  1. multi-chip coalescing width (the "sweet point" of Fig. 11c),
 *  2. Data Packer flush timeout (staging delay vs packing ratio),
 *  3. PE count per NDP module (compute vs memory balance),
 *  4. CXLG-DIMM stripe weight (hot-data proximity placement),
 *  5. in-flight task depth (memory-level parallelism).
 *
 * Every configuration point of every sweep is one SweepRunner job;
 * all sections run as a single parallel sweep and print from the
 * merged outcomes.
 */

#include "bench_util.hh"

using namespace beacon;
using namespace beacon::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    const BenchTimer timer;
    std::printf("=== Ablation sweeps (FM seeding, Pt preset, "
                "BEACON-D) ===\n\n");
    const auto preset = benchSeedingPresets()[0];
    FmSeedingWorkload workload(preset);

    SweepRunner runner;
    applyBenchControls(runner, opts);
    SweepReport report = makeReport("ablation_sweeps", runner);

    const std::vector<unsigned> chip_widths = {1, 2, 4, 8, 16};
    for (unsigned chips : chip_widths) {
        SystemParams params = SystemParams::beaconD();
        params.opts.coalesce_chips = chips;
        runner.enqueueRun(
            {"coalescing", std::to_string(chips)}, params, workload,
            0);
    }

    const std::vector<Tick> flush_timeouts = {5, 15, 50, 200};
    for (Tick timeout_ns : flush_timeouts) {
        SystemParams params = SystemParams::beaconD();
        params.pool.packer.flush_timeout = timeout_ns * 1000;
        runner.enqueueRun(
            {"flush_timeout_ns", std::to_string(timeout_ns)}, params,
            workload, 0);
    }

    const std::vector<unsigned> pe_counts = {16, 32, 64, 128, 256};
    for (unsigned pes : pe_counts) {
        SystemParams params = SystemParams::beaconD();
        params.pes_per_module = pes;
        runner.enqueueRun({"pes_per_module", std::to_string(pes)},
                          params, workload, 0);
    }

    for (bool shipping : {false, true}) {
        // Packed pool without proximity placement: remote requests
        // reach NDP-capable CXLG-DIMMs sub-flit.
        SystemParams params = SystemParams::cxlVanillaD();
        params.opts.data_packing = true;
        params.opts.mem_access_opt = true;
        params.opts.function_shipping = shipping;
        runner.enqueueRun({"function_shipping",
                           shipping ? "ship-compute" : "fetch-data"},
                          params, workload, 0);
    }

    for (PagePolicy policy : {PagePolicy::Open, PagePolicy::Closed}) {
        SystemParams params = SystemParams::beaconD();
        params.page_policy = policy;
        runner.enqueueRun(
            {"page_policy",
             policy == PagePolicy::Open ? "open" : "closed"},
            params, workload, 0, {"rowHits"});
    }

    const std::vector<unsigned> stripe_weights = {1, 3, 5, 9};
    for (unsigned weight : stripe_weights) {
        SystemParams params = SystemParams::beaconD();
        params.opts.cxlg_stripe_weight = weight;
        runner.enqueueRun({"stripe_weight", std::to_string(weight)},
                          params, workload, 0);
    }

    const std::vector<unsigned> depths = {16, 64, 256, 1024};
    for (unsigned depth : depths) {
        SystemParams params = SystemParams::beaconD();
        params.max_inflight_tasks = depth;
        runner.enqueueRun({"inflight_depth", std::to_string(depth)},
                          params, workload, 0);
    }

    const std::vector<SweepOutcome> outcomes = runner.run();
    report.add(outcomes);
    if (runner.listOnly())
        return 0;
    auto next = outcomes.begin();

    std::printf("--- coalescing width (chips per access) ---\n");
    printHeader("chips", {"time(us)", "cov", "energy(uJ)"});
    for (std::size_t i = 0; i < chip_widths.size(); ++i, ++next) {
        const RunResult &r = next->result;
        printRow(next->key.label,
                 {r.seconds * 1e6, r.chip_access_cov,
                  r.energy.totalPj().value() * 1e-6},
                 "%.3f");
    }

    std::printf("\n--- Data Packer flush timeout ---\n");
    printHeader("timeout(ns)", {"time(us)", "wire(MB)"});
    for (std::size_t i = 0; i < flush_timeouts.size(); ++i, ++next) {
        const RunResult &r = next->result;
        printRow(next->key.label,
                 {r.seconds * 1e6, double(r.wire_bytes.value()) / 1e6},
                 "%.3f");
    }

    std::printf("\n--- PEs per NDP module ---\n");
    printHeader("PEs", {"time(us)", "tasks/s(M)"});
    for (std::size_t i = 0; i < pe_counts.size(); ++i, ++next) {
        const RunResult &r = next->result;
        printRow(next->key.label,
                 {r.seconds * 1e6, r.tasks_per_second / 1e6},
                 "%.3f");
    }

    std::printf("\n--- function shipping (MEDAL-style task "
                "forwarding) ---\n");
    printHeader("mode", {"time(us)", "wire(MB)"});
    for (int i = 0; i < 2; ++i, ++next) {
        const RunResult &r = next->result;
        printRow(next->key.label,
                 {r.seconds * 1e6, double(r.wire_bytes.value()) / 1e6},
                 "%.3f");
    }

    std::printf("\n--- DRAM page policy ---\n");
    printHeader("policy", {"time(us)", "rowHits", "energy(uJ)"});
    for (int i = 0; i < 2; ++i, ++next) {
        const RunResult &r = next->result;
        printRow(next->key.label,
                 {r.seconds * 1e6, statOf(*next, "rowHits"),
                  r.energy.totalPj().value() * 1e-6},
                 "%.2f");
    }

    std::printf("\n--- CXLG-DIMM stripe weight (hot-data "
                "proximity) ---\n");
    printHeader("weight", {"time(us)", "wire(MB)"});
    for (std::size_t i = 0; i < stripe_weights.size(); ++i, ++next) {
        const RunResult &r = next->result;
        printRow(next->key.label,
                 {r.seconds * 1e6, double(r.wire_bytes.value()) / 1e6},
                 "%.3f");
    }

    std::printf("\n--- in-flight task depth per module ---\n");
    printHeader("inflight", {"time(us)"});
    for (std::size_t i = 0; i < depths.size(); ++i, ++next)
        printRow(next->key.label, {next->result.seconds * 1e6},
                 "%.3f");

    emitJson(report, opts, timer);
    return 0;
}
