/**
 * @file
 * Ablation benches for the design choices DESIGN.md calls out:
 *
 *  1. multi-chip coalescing width (the "sweet point" of Fig. 11c),
 *  2. Data Packer flush timeout (staging delay vs packing ratio),
 *  3. PE count per NDP module (compute vs memory balance),
 *  4. CXLG-DIMM stripe weight (hot-data proximity placement),
 *  5. in-flight task depth (memory-level parallelism).
 */

#include "bench_util.hh"

using namespace beacon;
using namespace beacon::bench;

int
main()
{
    std::printf("=== Ablation sweeps (FM seeding, Pt preset, "
                "BEACON-D) ===\n\n");
    const auto preset = benchSeedingPresets()[0];
    FmSeedingWorkload workload(preset);

    std::printf("--- coalescing width (chips per access) ---\n");
    printHeader("chips", {"time(us)", "cov", "energy(uJ)"});
    for (unsigned chips : {1u, 2u, 4u, 8u, 16u}) {
        SystemParams params = SystemParams::beaconD();
        params.opts.coalesce_chips = chips;
        const RunResult r = runSystem(params, workload, 0);
        printRow(std::to_string(chips),
                 {r.seconds * 1e6, r.chip_access_cov,
                  r.energy.totalPj() * 1e-6},
                 "%.3f");
    }

    std::printf("\n--- Data Packer flush timeout ---\n");
    printHeader("timeout(ns)", {"time(us)", "wire(MB)"});
    for (Tick timeout_ns : {5u, 15u, 50u, 200u}) {
        SystemParams params = SystemParams::beaconD();
        params.pool.packer.flush_timeout = timeout_ns * 1000;
        const RunResult r = runSystem(params, workload, 0);
        printRow(std::to_string(timeout_ns),
                 {r.seconds * 1e6, double(r.wire_bytes) / 1e6},
                 "%.3f");
    }

    std::printf("\n--- PEs per NDP module ---\n");
    printHeader("PEs", {"time(us)", "tasks/s(M)"});
    for (unsigned pes : {16u, 32u, 64u, 128u, 256u}) {
        SystemParams params = SystemParams::beaconD();
        params.pes_per_module = pes;
        const RunResult r = runSystem(params, workload, 0);
        printRow(std::to_string(pes),
                 {r.seconds * 1e6, r.tasks_per_second / 1e6},
                 "%.3f");
    }

    std::printf("\n--- function shipping (MEDAL-style task "
                "forwarding) ---\n");
    printHeader("mode", {"time(us)", "wire(MB)"});
    for (bool shipping : {false, true}) {
        // Packed pool without proximity placement: remote requests
        // reach NDP-capable CXLG-DIMMs sub-flit.
        SystemParams params = SystemParams::cxlVanillaD();
        params.opts.data_packing = true;
        params.opts.mem_access_opt = true;
        params.opts.function_shipping = shipping;
        const RunResult r = runSystem(params, workload, 0);
        printRow(shipping ? "ship-compute" : "fetch-data",
                 {r.seconds * 1e6, double(r.wire_bytes) / 1e6},
                 "%.3f");
    }

    std::printf("\n--- DRAM page policy ---\n");
    printHeader("policy", {"time(us)", "rowHits", "energy(uJ)"});
    for (PagePolicy policy : {PagePolicy::Open, PagePolicy::Closed}) {
        SystemParams params = SystemParams::beaconD();
        params.page_policy = policy;
        NdpSystem system(params, workload);
        const RunResult r = system.run(0);
        printRow(policy == PagePolicy::Open ? "open" : "closed",
                 {r.seconds * 1e6,
                  system.stats().sumMatching("rowHits"),
                  r.energy.totalPj() * 1e-6},
                 "%.2f");
    }

    std::printf("\n--- CXLG-DIMM stripe weight (hot-data "
                "proximity) ---\n");
    printHeader("weight", {"time(us)", "wire(MB)"});
    for (unsigned weight : {1u, 3u, 5u, 9u}) {
        SystemParams params = SystemParams::beaconD();
        params.opts.cxlg_stripe_weight = weight;
        const RunResult r = runSystem(params, workload, 0);
        printRow(std::to_string(weight),
                 {r.seconds * 1e6, double(r.wire_bytes) / 1e6},
                 "%.3f");
    }

    std::printf("\n--- in-flight task depth per module ---\n");
    printHeader("inflight", {"time(us)"});
    for (unsigned depth : {16u, 64u, 256u, 1024u}) {
        SystemParams params = SystemParams::beaconD();
        params.max_inflight_tasks = depth;
        const RunResult r = runSystem(params, workload, 0);
        printRow(std::to_string(depth), {r.seconds * 1e6}, "%.3f");
    }
    return 0;
}
