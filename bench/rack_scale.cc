/**
 * @file
 * Rack-scale sharing bench: N hosts attached to one shared BEACON-D
 * pool through a multi-level rack switch tree, swept over host count,
 * switch levels, and HDM interleave ways.
 *
 * Every sweep point runs one RackSystem: each host streams its job
 * inputs down the rack tree, the host's HDM decoder scatters them
 * across its bound expansion DIMMs, and all hosts read (and
 * periodically write) one shared reference segment under
 * back-invalidate coherence. The emitted curves are the two the
 * rack-scale story needs: pool utilization as hosts are added (the
 * pooling win) and per-host p99 inflation (the cross-host
 * interference cost). A separate "hotplug" point hot-removes and
 * hot-adds an expander mid-run to measure migration traffic.
 *
 * Datasets are "l<levels>w<ways>" (rack depth x interleave ways) and
 * labels "h<hosts>"; per-host latency lands under "host<h>.*" stat
 * keys. Runs are bit-identical across BEACON_BENCH_JOBS (every point
 * owns its machine) and under BEACON_DES_SHARDS (CI-enforced).
 */

#include "bench_util.hh"

#include "rack/system.hh"

using namespace beacon;
using namespace beacon::bench;

namespace
{

/** One sweep point of the rack grid. */
struct RackPoint
{
    unsigned hosts;
    unsigned levels;
    unsigned ways;
    bool hotplug; //!< hot-remove + hot-add an expander mid-run
};

const HashSeedingWorkload &
rackWorkload()
{
    static const HashSeedingWorkload workload = [] {
        genomics::DatasetPreset preset =
            genomics::seedingPresets()[3];
        preset.genome.length = (1u << 14) * benchScale();
        preset.reads.num_reads = 32 * benchScale();
        return HashSeedingWorkload(preset);
    }();
    return workload;
}

rack::RackParams
rackParams(const RackPoint &point, std::uint64_t seed)
{
    rack::RackParams p;
    p.hosts = point.hosts;
    p.switch_levels = point.levels;
    p.interleave_ways = point.ways;
    p.hdm_bytes_per_host = Bytes{1u << 20};
    // Write-heavy enough that cross-host sharing shows up as BI
    // traffic, not just queueing.
    p.segment_write_every = 2;
    p.seed = seed;
    rack::SegmentParams seg;
    seg.name = "reference";
    seg.bytes = Bytes{1u << 16};
    seg.owner_dimm = 8; // first expansion DIMM of the BEACON-D base
    p.segments.push_back(seg);
    return p;
}

SweepOutcome
runPoint(const SweepKey &key, const RackPoint &point,
         const BenchOptions &opts, std::uint64_t seed)
{
    rack::RackParams params = rackParams(point, seed);
    params.base.obs = obsConfigFor(opts);
    rack::RackSystem rack(params);
    for (unsigned h = 0; h < point.hosts; ++h) {
        TenantSpec spec;
        spec.name = "host" + std::to_string(h) + ".t0";
        spec.workload = &rackWorkload();
        spec.num_jobs = 4;
        spec.tasks_per_job = 2;
        spec.arrival.concurrency = 2;
        if (rack.addTenant(h, spec) == untenanted_id)
            BEACON_PANIC("rack tenant rejected on host ", h);
    }
    if (point.hotplug) {
        // Remove one of host 1's expanders mid-run (regions migrate
        // to the survivors), then plug it back in.
        rack.scheduleHotRemove(Tick{400000}, 9);
        rack.scheduleHotAdd(Tick{1200000}, 9);
    }
    const rack::RackReport report = rack.run();

    SweepOutcome out;
    out.key = key;
    out.result = report.machine;
    out.stats.emplace_back("pool_utilization",
                           report.pool_utilization);
    const double lookups =
        double(report.cache_hits + report.cache_misses);
    out.stats.emplace_back("cache_hit_rate",
                           lookups > 0
                               ? double(report.cache_hits) / lookups
                               : 0.0);
    out.stats.emplace_back("bi_flits", double(report.bi_flits));
    out.stats.emplace_back("invalidations",
                           double(report.invalidations));
    out.stats.emplace_back("ingress_bytes",
                           double(report.ingress_bytes.value()));
    out.stats.emplace_back("migrated_bytes",
                           double(report.migrated_bytes.value()));
    double p99_sum = 0, jps_sum = 0;
    for (std::size_t h = 0; h < report.hosts.size(); ++h) {
        const TenantReport &tenant = report.hosts[h].tenants.at(0);
        const std::string tag = "host" + std::to_string(h);
        out.stats.emplace_back(tag + ".p99_ms",
                               tenant.p99_latency_ms);
        out.stats.emplace_back(tag + ".jobs_per_second",
                               tenant.jobs_per_second);
        out.stats.emplace_back(tag + ".jobs_completed",
                               double(tenant.jobs_completed));
        p99_sum += tenant.p99_latency_ms;
        jps_sum += tenant.jobs_per_second;
    }
    out.stats.emplace_back("mean_p99_ms",
                           p99_sum / double(report.hosts.size()));
    out.stats.emplace_back("total_jobs_per_second", jps_sum);
    // Telemetry while the rack (whose sampler series callbacks
    // reference it) is still alive.
    emitObsOutputs(rack.machine(), opts, "rack_scale", key, out);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    const BenchTimer timer;
    std::printf("=== Rack-scale pool sharing: hosts x switch levels "
                "x interleave ways ===\n\n");

    const std::vector<unsigned> host_counts = {1, 2, 4, 8};
    const std::vector<unsigned> level_counts = {1, 2};
    const std::vector<unsigned> way_counts = {1, 2, 4};
    std::vector<RackPoint> points;
    for (unsigned levels : level_counts)
        for (unsigned ways : way_counts)
            for (unsigned hosts : host_counts)
                points.push_back({hosts, levels, ways, false});
    points.push_back({2, 1, 2, true}); // the hot-plug measurement

    SweepRunner runner;
    applyBenchControls(runner, opts);
    SweepReport report = makeReport("rack_scale", runner);

    for (const RackPoint &point : points) {
        const SweepKey key{
            point.hotplug ? "hotplug"
                          : "l" + std::to_string(point.levels) + "w" +
                                std::to_string(point.ways),
            "h" + std::to_string(point.hosts)};
        runner.enqueue(key, [&, point, key](RunContext &ctx) {
            return runPoint(key, point, opts,
                            0xBEACC0DEull ^ ctx.index);
        });
    }
    const std::vector<SweepOutcome> outcomes = runner.run();
    report.add(outcomes);
    if (runner.listOnly())
        return 0;

    // Pool-utilization and interference curves, one table per
    // (levels, ways) dataset; rows are the host-count sweep.
    double p99_h1 = 0, p99_h8 = 0, util_h1 = 0, util_h8 = 0;
    for (std::size_t d = 0; d * host_counts.size() < points.size();
         ++d) {
        const RackPoint &first = points[d * host_counts.size()];
        if (first.hotplug)
            break; // the trailing hot-plug point prints separately
        std::printf("--- %u switch level(s), %u-way interleave ---\n",
                    first.levels, first.ways);
        printHeader("hosts", {"pool util", "hit rate", "BI flits",
                              "mean p99", "sum j/s"}, 14);
        for (std::size_t h = 0; h < host_counts.size(); ++h) {
            const SweepOutcome &outcome =
                outcomes[d * host_counts.size() + h];
            if (outcome.skipped)
                continue;
            printRow(outcome.key.label,
                     {statOf(outcome, "pool_utilization"),
                      statOf(outcome, "cache_hit_rate"),
                      statOf(outcome, "bi_flits"),
                      statOf(outcome, "mean_p99_ms"),
                      statOf(outcome, "total_jobs_per_second")},
                     "%.4f", 14);
            // The interference headline reads off the 1-level 2-way
            // dataset (the default rack shape).
            if (first.levels == 1 && first.ways == 2) {
                if (host_counts[h] == 1) {
                    p99_h1 = statOf(outcome, "mean_p99_ms");
                    util_h1 = statOf(outcome, "pool_utilization");
                }
                if (host_counts[h] == 8) {
                    p99_h8 = statOf(outcome, "mean_p99_ms");
                    util_h8 = statOf(outcome, "pool_utilization");
                }
            }
        }
        std::printf("\n");
    }

    const SweepOutcome &hotplug = outcomes.back();
    if (!hotplug.skipped) {
        std::printf("--- hot-plug (2 hosts, remove + re-add one "
                    "expander mid-run) ---\n");
        std::printf("migrated bytes: %.0f, mean p99: %.4f ms\n\n",
                    statOf(hotplug, "migrated_bytes"),
                    statOf(hotplug, "mean_p99_ms"));
    }

    if (p99_h1 > 0 && p99_h8 > 0) {
        const double inflation = p99_h8 / p99_h1;
        std::printf("pool utilization 1 -> 8 hosts (l1w2): %.4f -> "
                    "%.4f; per-host p99 inflation: %.2fx\n",
                    util_h1, util_h8, inflation);
        report.derive("pool_util_h1", util_h1);
        report.derive("pool_util_h8", util_h8);
        report.derive("p99_inflation_h8_over_h1", inflation);
    }

    emitJson(report, opts, timer);
    return 0;
}
