/**
 * @file
 * Fig. 14 reproduction: Hash-index based DNA seeding, step-by-step
 * optimizations for BEACON-D (a,b) and BEACON-S (c,d) against the
 * 48-thread CPU and MEDAL.
 *
 * Paper: BEACON-D ends 572.17x CPU / 4.70x MEDAL (98.59% of ideal);
 * BEACON-S ends 556.66x CPU / 4.57x MEDAL (98.64% of ideal). Data
 * packing contributes little here (few fine-grained accesses).
 */

#include <memory>

#include "bench_util.hh"

using namespace beacon;
using namespace beacon::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    const BenchTimer timer;
    std::printf("=== Fig. 14: Hash-index based DNA seeding ===\n\n");

    std::vector<std::unique_ptr<HashSeedingWorkload>> owners;
    std::vector<std::pair<std::string, const Workload *>> datasets;
    for (const auto &preset : benchSeedingPresets()) {
        owners.push_back(
            std::make_unique<HashSeedingWorkload>(preset));
        datasets.emplace_back(preset.name, owners.back().get());
    }

    SweepRunner runner;
    applyBenchControls(runner, opts);
    SweepReport report = makeReport("fig14_hash_seeding", runner);

    ladderPanel(runner, report, opts,
                "Fig. 14(a,b): BEACON-D (speedup over 48-thread CPU)",
                datasets, SystemParams::medal(),
                beaconDLadder(/*with_coalescing=*/false));

    ladderPanel(runner, report, opts,
                "Fig. 14(c,d): BEACON-S (speedup over 48-thread CPU)",
                datasets, SystemParams::medal(),
                beaconSLadder(/*with_single_pass=*/false));

    std::printf("paper: BEACON-D 572.17x CPU / 4.70x MEDAL; "
                "BEACON-S 556.66x CPU / 4.57x MEDAL\n");
    emitJson(report, opts, timer);
    return 0;
}
