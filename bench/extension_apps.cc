/**
 * @file
 * Section V extension bench: BEACON as a general NDP platform.
 *
 * Runs the graph-traversal and database-probing extension workloads
 * (PE replacement) on CXL-vanilla, BEACON-D, and BEACON-S, showing
 * that the architecture/memory-management optimizations carry over
 * to other memory-bound applications, as the paper claims.
 */

#include "bench_util.hh"

#include "accel/extension_workloads.hh"

using namespace beacon;
using namespace beacon::bench;

namespace
{

void
panel(const char *title, const Workload &workload)
{
    std::printf("--- %s ---\n", title);
    printHeader("system", {"time(us)", "wire(MB)", "energy(uJ)",
                           "vs vanilla"});
    const RunResult vanilla = runSystem(
        workload.engine() == EngineKind::GraphTraversal
            ? SystemParams::cxlVanillaD()
            : SystemParams::cxlVanillaS(),
        workload, 0);
    for (const SystemParams &params :
         {SystemParams::cxlVanillaD(), SystemParams::cxlVanillaS(),
          SystemParams::beaconD(), SystemParams::beaconS()}) {
        const RunResult r = runSystem(params, workload, 0);
        printRow(params.name,
                 {r.seconds * 1e6, double(r.wire_bytes) / 1e6,
                  r.energy.totalPj() * 1e-6,
                  double(vanilla.ticks) / double(r.ticks)},
                 "%.2f");
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("=== Section V: extension to other memory-bound "
                "applications ===\n\n");

    graph::GraphParams gp;
    gp.num_vertices = 1 << 14;
    gp.avg_degree = 8;
    GraphBfsWorkload bfs(gp, 256, 256);
    panel("graph processing: BFS over a power-law CSR graph", bfs);

    DbProbeWorkload probe(1 << 16, 14, 512, 32);
    panel("database searching: hash-join index probing", probe);

    std::printf("paper (Section V): BEACON extends to image/graph "
                "processing and database searching by replacing the "
                "PEs; placement and mapping adapt per data "
                "structure.\n");
    return 0;
}
