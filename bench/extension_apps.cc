/**
 * @file
 * Section V extension bench: BEACON as a general NDP platform.
 *
 * Runs the graph-traversal and database-probing extension workloads
 * (PE replacement) on CXL-vanilla, BEACON-D, and BEACON-S, showing
 * that the architecture/memory-management optimizations carry over
 * to other memory-bound applications, as the paper claims.
 */

#include "bench_util.hh"

#include "accel/extension_workloads.hh"

using namespace beacon;
using namespace beacon::bench;

namespace
{

void
panel(SweepRunner &runner, SweepReport &report, const char *title,
      const Workload &workload)
{
    // Submission order: the normalisation baseline, then the four
    // reported systems.
    const SystemParams vanilla_base =
        workload.engine() == EngineKind::GraphTraversal
            ? SystemParams::cxlVanillaD()
            : SystemParams::cxlVanillaS();
    runner.enqueueRun({workload.name(), "baseline"}, vanilla_base,
                      workload, 0);
    for (const SystemParams &params :
         {SystemParams::cxlVanillaD(), SystemParams::cxlVanillaS(),
          SystemParams::beaconD(), SystemParams::beaconS()})
        runner.enqueueRun({workload.name(), params.name}, params,
                          workload, 0);
    const std::vector<SweepOutcome> outcomes = runner.run();
    if (runner.listOnly()) {
        report.add(outcomes);
        return;
    }

    std::printf("--- %s ---\n", title);
    printHeader("system", {"time(us)", "wire(MB)", "energy(uJ)",
                           "vs vanilla"});
    const RunResult &vanilla = outcomes[0].result;
    for (std::size_t i = 1; i < outcomes.size(); ++i) {
        const RunResult &r = outcomes[i].result;
        printRow(outcomes[i].key.label,
                 {r.seconds * 1e6, double(r.wire_bytes.value()) / 1e6,
                  r.energy.totalPj().value() * 1e-6,
                  double(vanilla.ticks) / double(r.ticks)},
                 "%.2f");
    }
    std::printf("\n");
    report.add(outcomes);
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    const BenchTimer timer;
    std::printf("=== Section V: extension to other memory-bound "
                "applications ===\n\n");

    graph::GraphParams gp;
    gp.num_vertices = 1 << 14;
    gp.avg_degree = 8;
    GraphBfsWorkload bfs(gp, 256, 256);
    DbProbeWorkload probe(1 << 16, 14, 512, 32);

    SweepRunner runner;
    applyBenchControls(runner, opts);
    SweepReport report = makeReport("extension_apps", runner);

    panel(runner, report,
          "graph processing: BFS over a power-law CSR graph", bfs);
    panel(runner, report,
          "database searching: hash-join index probing", probe);

    std::printf("paper (Section V): BEACON extends to image/graph "
                "processing and database searching by replacing the "
                "PEs; placement and mapping adapt per data "
                "structure.\n");
    emitJson(report, opts, timer);
    return 0;
}
