/**
 * @file
 * Fig. 16 reproduction: DNA pre-alignment — performance improvement
 * and energy reduction of BEACON-D and BEACON-S over the 48-thread
 * CPU baseline (Shouji software), per dataset.
 *
 * Paper: BEACON-D 362.04x / BEACON-S 359.36x performance; 387.05x /
 * 382.80x energy reduction.
 */

#include <memory>

#include "bench_util.hh"

using namespace beacon;
using namespace beacon::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    const BenchTimer timer;
    std::printf("=== Fig. 16: DNA pre-alignment ===\n\n");

    const auto presets = benchSeedingPresets();
    std::vector<std::unique_ptr<PrealignWorkload>> owners;
    for (const auto &preset : presets)
        owners.push_back(std::make_unique<PrealignWorkload>(preset));

    // Per dataset: cpu, BEACON-D, BEACON-S (submission order).
    SweepRunner runner;
    applyBenchControls(runner, opts);
    SweepReport report = makeReport("fig16_prealign", runner);
    for (std::size_t i = 0; i < presets.size(); ++i) {
        enqueueCpuBaseline(runner, presets[i].name, *owners[i],
                           /*kmc_single_pass=*/true);
        runner.enqueueRun({presets[i].name, "BEACON-D"},
                          SystemParams::beaconD(), *owners[i], 0);
        runner.enqueueRun({presets[i].name, "BEACON-S"},
                          SystemParams::beaconS(), *owners[i], 0);
    }
    const std::vector<SweepOutcome> outcomes = runner.run();
    if (runner.listOnly()) {
        report.add(outcomes);
        return 0;
    }

    printHeader("dataset", {"D perf-x", "S perf-x", "D energy-x",
                            "S energy-x"});
    std::vector<double> d_perf, s_perf, d_energy, s_energy;
    for (std::size_t i = 0; i < presets.size(); ++i) {
        const SweepOutcome &cpu = outcomes[i * 3];
        const RunResult &d = outcomes[i * 3 + 1].result;
        const RunResult &s = outcomes[i * 3 + 2].result;
        const double cpu_seconds = statOf(cpu, cpu_seconds_key);
        const double cpu_energy = statOf(cpu, cpu_energy_key);
        d_perf.push_back(cpu_seconds / d.seconds);
        s_perf.push_back(cpu_seconds / s.seconds);
        d_energy.push_back(cpu_energy / d.energy.totalPj().value());
        s_energy.push_back(cpu_energy / s.energy.totalPj().value());
        printRow(presets[i].name,
                 {d_perf.back(), s_perf.back(), d_energy.back(),
                  s_energy.back()});
    }
    std::printf("\n");
    printRow("geomean", {geomean(d_perf), geomean(s_perf),
                         geomean(d_energy), geomean(s_energy)});
    std::printf("\npaper: D 362.04x / S 359.36x perf; D 387.05x / "
                "S 382.80x energy\n");

    report.add(outcomes);
    report.derive("beacon_d_perf_geomean", geomean(d_perf));
    report.derive("beacon_s_perf_geomean", geomean(s_perf));
    report.derive("beacon_d_energy_geomean", geomean(d_energy));
    report.derive("beacon_s_energy_geomean", geomean(s_energy));
    emitJson(report, opts, timer);
    return 0;
}
