/**
 * @file
 * Fig. 16 reproduction: DNA pre-alignment — performance improvement
 * and energy reduction of BEACON-D and BEACON-S over the 48-thread
 * CPU baseline (Shouji software), per dataset.
 *
 * Paper: BEACON-D 362.04x / BEACON-S 359.36x performance; 387.05x /
 * 382.80x energy reduction.
 */

#include <memory>

#include "bench_util.hh"

using namespace beacon;
using namespace beacon::bench;

int
main()
{
    std::printf("=== Fig. 16: DNA pre-alignment ===\n\n");
    printHeader("dataset", {"D perf-x", "S perf-x", "D energy-x",
                            "S energy-x"});

    std::vector<double> d_perf, s_perf, d_energy, s_energy;
    for (const auto &preset : benchSeedingPresets()) {
        PrealignWorkload workload(preset);
        const CpuBaselineResult cpu = cpuBaseline(
            measureFootprint(workload, WorkloadContext{}));
        const RunResult d =
            runSystem(SystemParams::beaconD(), workload, 0);
        const RunResult s =
            runSystem(SystemParams::beaconS(), workload, 0);
        d_perf.push_back(cpu.seconds / d.seconds);
        s_perf.push_back(cpu.seconds / s.seconds);
        d_energy.push_back(cpu.energy_pj / d.energy.totalPj());
        s_energy.push_back(cpu.energy_pj / s.energy.totalPj());
        printRow(preset.name,
                 {d_perf.back(), s_perf.back(), d_energy.back(),
                  s_energy.back()});
    }
    std::printf("\n");
    printRow("geomean", {geomean(d_perf), geomean(s_perf),
                         geomean(d_energy), geomean(s_energy)});
    std::printf("\npaper: D 362.04x / S 359.36x perf; D 387.05x / "
                "S 382.80x energy\n");
    return 0;
}
