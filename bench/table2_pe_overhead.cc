/**
 * @file
 * Table II: hardware overhead of the PEs in MEDAL, NEST, and BEACON
 * (28 nm synthesis constants the evaluation consumes), plus the
 * per-engine computational latencies of Section VI-A.
 *
 * No simulations run here; --json emits the synthesis constants and
 * latencies as derived values of an empty sweep.
 */

#include <cstdio>

#include "accel/energy_model.hh"
#include "bench_util.hh"
#include "ndp/task.hh"

using namespace beacon;
using namespace beacon::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    const BenchTimer timer;
    SweepRunner runner;
    applyBenchControls(runner, opts);
    SweepReport report = makeReport("table2_pe_overhead", runner);

    std::printf("=== Table II: PE hardware overhead ===\n\n");
    std::printf("%-14s %12s %18s %18s\n", "architecture",
                "area (um^2)", "dyn. power (mW)",
                "leak. power (uW)");
    for (const PeOverhead &row : peOverheadTable()) {
        std::printf("%-14s %12.2f %18.2f %18.2f\n",
                    row.architecture.c_str(), row.area_um2,
                    row.dynamic_power_mw, row.leakage_power_uw);
        report.derive(row.architecture + ".area_um2", row.area_um2);
        report.derive(row.architecture + ".dynamic_power_mw",
                      row.dynamic_power_mw);
        report.derive(row.architecture + ".leakage_power_uw",
                      row.leakage_power_uw);
    }

    std::printf("\nPer-step computational latencies (DRAM cycles)\n");
    const std::pair<const char *, EngineKind> engines[] = {
        {"fm_index", EngineKind::FmIndex},
        {"hash_index", EngineKind::HashIndex},
        {"kmer_counting", EngineKind::KmerCounting},
        {"prealign", EngineKind::Prealign},
    };
    const char *labels[] = {"FM-index seeding", "Hash-index seeding",
                            "k-mer counting", "DNA pre-alignment"};
    for (std::size_t i = 0; i < std::size(engines); ++i) {
        const auto cycles = engineStepCycles(engines[i].second);
        std::printf("  %-20s  %lu\n", labels[i],
                    static_cast<unsigned long>(cycles.value()));
        report.derive(std::string("step_cycles.") + engines[i].first,
                      double(cycles.value()));
    }
    emitJson(report, opts, timer);
    return 0;
}
