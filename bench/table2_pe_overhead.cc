/**
 * @file
 * Table II: hardware overhead of the PEs in MEDAL, NEST, and BEACON
 * (28 nm synthesis constants the evaluation consumes), plus the
 * per-engine computational latencies of Section VI-A.
 */

#include <cstdio>

#include "accel/energy_model.hh"
#include "ndp/task.hh"

using namespace beacon;

int
main()
{
    std::printf("=== Table II: PE hardware overhead ===\n\n");
    std::printf("%-14s %12s %18s %18s\n", "architecture",
                "area (um^2)", "dyn. power (mW)",
                "leak. power (uW)");
    for (const PeOverhead &row : peOverheadTable()) {
        std::printf("%-14s %12.2f %18.2f %18.2f\n",
                    row.architecture.c_str(), row.area_um2,
                    row.dynamic_power_mw, row.leakage_power_uw);
    }

    std::printf("\nPer-step computational latencies (DRAM cycles)\n");
    std::printf("  FM-index seeding      %lu\n",
                static_cast<unsigned long>(
                    engineStepCycles(EngineKind::FmIndex)));
    std::printf("  Hash-index seeding    %lu\n",
                static_cast<unsigned long>(
                    engineStepCycles(EngineKind::HashIndex)));
    std::printf("  k-mer counting        %lu\n",
                static_cast<unsigned long>(
                    engineStepCycles(EngineKind::KmerCounting)));
    std::printf("  DNA pre-alignment     %lu\n",
                static_cast<unsigned long>(
                    engineStepCycles(EngineKind::Prealign)));
    return 0;
}
