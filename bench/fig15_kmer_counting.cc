/**
 * @file
 * Fig. 15 reproduction: k-mer counting, step-by-step optimizations
 * for BEACON-D (a,b) and BEACON-S (c,d) against the 48-thread CPU
 * and NEST. The BEACON-S ladder runs NEST-style multi-pass counting
 * until the final rung enables single-pass counting.
 *
 * Paper: BEACON-D ends 443.08x CPU / 5.19x NEST; BEACON-S ends
 * 527.99x CPU / 6.19x NEST with single-pass contributing 1.48x.
 */

#include <memory>

#include "bench_util.hh"

using namespace beacon;
using namespace beacon::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    const BenchTimer timer;
    std::printf("=== Fig. 15: k-mer counting (human-style 50x "
                "preset) ===\n\n");

    KmerCountingWorkload workload(benchKmcPreset());
    std::vector<std::pair<std::string, const Workload *>> datasets =
        {{"human50x", &workload}};

    SweepRunner runner;
    applyBenchControls(runner, opts);
    SweepReport report = makeReport("fig15_kmer_counting", runner);

    ladderPanel(runner, report, opts,
                "Fig. 15(a,b): BEACON-D (speedup over 48-thread CPU)",
                datasets, SystemParams::nest(),
                beaconDLadder(/*with_coalescing=*/false));

    ladderPanel(runner, report, opts,
                "Fig. 15(c,d): BEACON-S (speedup over 48-thread CPU)",
                datasets, SystemParams::nest(),
                beaconSLadder(/*with_single_pass=*/true));

    std::printf("paper: BEACON-D 443.08x CPU / 5.19x NEST; BEACON-S "
                "527.99x CPU / 6.19x NEST (single-pass: 1.48x)\n");
    emitJson(report, opts, timer);
    return 0;
}
