# Regenerate the beacon-shardmap-1 report and require it to match
# the committed golden byte for byte. Run by the
# beacon_shardmap_golden ctest and by the beacon-lint CI job.
#
# Variables: LINT (tool binary), REPO_ROOT, GOLDEN, OUT.

execute_process(
    COMMAND ${LINT} --repo-root ${REPO_ROOT} --shard-map ${OUT}
    RESULT_VARIABLE lint_result
    OUTPUT_VARIABLE lint_output
    ERROR_VARIABLE lint_output)
# Exit 1 means unsuppressed lint findings, which beacon_lint_repo
# owns; the shard map is still written. Only 2+ is a tool failure.
if(lint_result GREATER 1)
    message(FATAL_ERROR "beacon-lint failed (${lint_result}):\n${lint_output}")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${GOLDEN} ${OUT}
    RESULT_VARIABLE diff_result)
if(NOT diff_result EQUAL 0)
    execute_process(
        COMMAND diff -u ${GOLDEN} ${OUT}
        OUTPUT_VARIABLE diff_text
        ERROR_VARIABLE diff_text)
    # New direct-mutation entries are the sharding hazards the map
    # exists to catch: a component poking another shard's state
    # without going through the event queue. Call them out above the
    # generic drift message so the fix is unambiguous.
    string(REGEX MATCHALL "\\+[^\n]*\"category\": \"direct-mutation\""
           new_mutations "${diff_text}")
    set(mutation_note "")
    if(new_mutations)
        list(LENGTH new_mutations num_mutations)
        set(mutation_note
            "${num_mutations} NEW direct-mutation entr(y/ies): these "
            "cross-shard writes bypass the event queue and are unsafe "
            "under parallel DES. Annotate deliberate ones with "
            "beacon-lint: shared-state(...) or reroute them through "
            "scheduled events before refreshing the golden.\n")
    endif()
    message(FATAL_ERROR
        "shard map drifted from the committed golden.\n"
        "${mutation_note}"
        "If the change is intentional (and every new direct-mutation "
        "entry is annotated or fixed), refresh it with:\n"
        "  beacon-lint --repo-root . --shard-map "
        "tools/beacon-lint/shardmap_golden.json\n${diff_text}")
endif()
message(STATUS "shard map matches golden: ${GOLDEN}")
