// Fixture: allow-file() suppresses a check across the whole file —
// no expect() markers here, so the self-test asserts silence.
//
// beacon-lint: allow-file(determinism-wallclock)

#include <chrono>

double
progressTimer()
{
    auto t0 = std::chrono::steady_clock::now();
    auto t1 = std::chrono::system_clock::now();
    return std::chrono::duration<double>(t1 - t1).count() +
           std::chrono::duration<double>(t0 - t0).count();
}
