// Fixture: determinism-time-seed must flag RNGs constructed or
// re-seeded from a time source. The raw ingredients (srand, chrono
// clocks) belong to determinism-rand / determinism-wallclock, so the
// overlapping lines expect those too. Not compiled — scanned by
// --self-test.

#include <chrono>
#include <cstdlib>
#include <random>

void
badSeeding()
{
    // The classic C idiom fires all three determinism checks.
    std::srand(time(nullptr)); // beacon-lint: expect(determinism-time-seed, determinism-rand, determinism-wallclock)

    // Engine constructed from a clock reading.
    std::mt19937 gen(std::chrono::steady_clock::now().time_since_epoch().count()); // beacon-lint: expect(determinism-time-seed, determinism-wallclock)

    // Engine re-seeded from a clock reading.
    std::mt19937_64 gen64(1);
    gen64.seed(std::chrono::system_clock::now().time_since_epoch().count()); // beacon-lint: expect(determinism-time-seed, determinism-wallclock)

    // The repo's own Rng seeded from a clock is just as broken.
    beacon::Rng rng(std::chrono::steady_clock::now().time_since_epoch().count()); // beacon-lint: expect(determinism-time-seed, determinism-wallclock)
    (void)gen;
    (void)rng;
}

void
goodSeeding(unsigned configured_seed)
{
    // Seeds that come from the experiment configuration are the
    // sanctioned pattern.
    std::mt19937 gen(configured_seed);
    beacon::Rng rng(configured_seed);
    gen.seed(configured_seed + 1);

    // An identifier containing "time" is not a clock.
    unsigned run_time_seed = configured_seed * 2;
    std::mt19937 gen2(run_time_seed);
    (void)gen2;
    (void)rng;
}

void
auditedSeeding()
{
    // A justified escape (e.g. a throwaway local tool) still needs
    // the annotation trio.
    std::srand(time(nullptr)); // beacon-lint: allow(determinism-time-seed, determinism-rand, determinism-wallclock)
}
