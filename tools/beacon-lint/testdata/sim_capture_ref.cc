// Fixture: sim-capture-ref must flag EventQueue callbacks that
// capture by reference (the callback can outlive the scheduling
// scope), including lambdas on a continuation line.

void
scheduleCallbacks(EventQueue &eq)
{
    int local = 0;

    eq.scheduleIn(10, [&] { ++local; }); // beacon-lint: expect(sim-capture-ref)
    eq.scheduleIn(10, [&local] { ++local; }); // beacon-lint: expect(sim-capture-ref)
    eq.schedule(20, // beacon-lint: expect(sim-capture-ref)
                [&local](Tick now) { local += int(now); });

    // By-value captures are safe.
    eq.scheduleIn(10, [local] { consume(local); });
    eq.scheduleAt(30, [](Tick now) { consume(int(now)); });

    // Moved-in state is safe too.
    auto cb = makeCallback();
    eq.scheduleIn(10, [cb = std::move(cb)] { cb(); });
}

void
auditedCapture(EventQueue &eq, Stats &stats)
{
    // 'stats' outlives the queue; audited and annotated.
    // beacon-lint: allow(sim-capture-ref)
    eq.scheduleIn(10, [&stats] { stats.bump(); });
}
