// Fixture: cross-component access classification. The event-queue
// and stat-registry accesses are safe/mergeable; the unannotated
// PoolFabric mutation is the sharding hazard the gate must flag; the
// annotated one is declared shared state and stays quiet (but still
// lands in the shard map as direct-mutation, annotated: true).

#include "cxl/pool.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace fixture
{

int
drive(EventQueue &eq, StatRegistry &stats, PoolFabric &fabric)
{
    eq.scheduleIn(10, 1);
    stats.counter(3) += 1;
    int seen = fabric.peek();
    fabric.bump(); // beacon-lint: expect(shared-state-mutation)
    // Declared cross-shard mutation: scheduler handoff audited in
    // the sharding design notes.
    fabric.bump(); // beacon-lint: shared-state(PoolFabric.bump, direct-mutation)
    return seen;
}

} // namespace fixture
