// Fixture: a clean top-of-DAG header, included (illegally) by the
// obs tap to exercise the tap leaf-only rule.

#ifndef FIXTURE_SERVICE_API_HH
#define FIXTURE_SERVICE_API_HH

namespace fixture
{

inline int
serviceVersion()
{
    return 1;
}

} // namespace fixture

#endif // FIXTURE_SERVICE_API_HH
