// Fixture: a miniature NdpModule at the real header path. The lane
// pass assigns it the per-instance-lane domain (home hint = the
// partition's DIMM lane), so its out-of-line method bodies in
// module.cc exercise cross-lane classification.

#ifndef FIXTURE_NDP_NDP_MODULE_HH
#define FIXTURE_NDP_NDP_MODULE_HH

#include "cxl/pool.hh"
#include "sim/event_queue.hh"

namespace fixture
{

class NdpModule
{
  public:
    int pending() const { return inflight; }
    void submit(EventQueue &eq, PoolFabric &fabric);

  private:
    int inflight = 0;
};

} // namespace fixture

#endif // FIXTURE_NDP_NDP_MODULE_HH
