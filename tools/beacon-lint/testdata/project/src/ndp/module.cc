// Fixture: lane-ownership classification. NdpModule code executes on
// its partition's per-instance lane, so touching the lane-0
// PoolFabric directly is the cross-lane hazard the gate must flag;
// the scheduleIn() region and the lane() annotation are the two
// sanctioned ways through.

#include "ndp/ndp_module.hh"

namespace fixture
{

void
NdpModule::submit(EventQueue &eq, PoolFabric &fabric)
{
    // Unmediated cross-lane mutation from per-instance code: both
    // whole-program gates fire on it.
    fabric.bump(); // beacon-lint: expect(lane-violation, shared-state-mutation)

    // Spelled inside the scheduleIn() call region: runs later, on
    // the lane the hint names — mediated, both passes quiet.
    eq.scheduleIn(4,
                  fabric.peek());

    // Declared co-homing, audited in the sharding design notes:
    // beacon-lint: lane(PoolFabric.bump) beacon-lint: shared-state(PoolFabric.bump, direct-mutation)
    fabric.bump();
    ++inflight;
}

} // namespace fixture
