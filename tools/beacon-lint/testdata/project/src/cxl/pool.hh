// Fixture: a miniature PoolFabric at the real header path — one
// const method (read) and one mutating method (direct-mutation when
// called from another module).

#ifndef FIXTURE_CXL_POOL_HH
#define FIXTURE_CXL_POOL_HH

#include "sim/event_queue.hh"

namespace fixture
{

class PoolFabric
{
  public:
    int peek() const { return count; }
    void bump() { ++count; }

  private:
    int count = 0;
};

} // namespace fixture

#endif // FIXTURE_CXL_POOL_HH
