// Fixture: half of a header include cycle with dram/cell.hh. The
// cycle is reported once, anchored at the lexicographically smallest
// participating file (this one).

#ifndef FIXTURE_DRAM_BANK_HH
#define FIXTURE_DRAM_BANK_HH

#include "dram/cell.hh" // beacon-lint: expect(include-cycle)

namespace fixture
{

inline int
bankRows()
{
    return 8 * cellBits();
}

} // namespace fixture

#endif // FIXTURE_DRAM_BANK_HH
