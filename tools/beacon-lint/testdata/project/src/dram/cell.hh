// Fixture: the other half of the bank.hh <-> cell.hh include cycle.
// The cycle finding is anchored at bank.hh; this file stays quiet.

#ifndef FIXTURE_DRAM_CELL_HH
#define FIXTURE_DRAM_CELL_HH

#include "dram/bank.hh"

namespace fixture
{

inline int
cellBits()
{
    return 1;
}

} // namespace fixture

#endif // FIXTURE_DRAM_CELL_HH
