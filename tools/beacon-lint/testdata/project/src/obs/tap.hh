// Fixture: taps are leaf-only — any module may include obs/, but
// obs/ itself may depend only on the kernels it observes (common,
// sim). Reaching into service/ must be flagged.

#ifndef FIXTURE_OBS_TAP_HH
#define FIXTURE_OBS_TAP_HH

#include "service/api.hh" // beacon-lint: expect(layer-back-edge)
#include "sim/event_queue.hh"

namespace fixture
{

inline int
tapVersion(const EventQueue &eq)
{
    return int(eq.now()) + serviceVersion();
}

} // namespace fixture

#endif // FIXTURE_OBS_TAP_HH
