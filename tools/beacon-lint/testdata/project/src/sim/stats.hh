// Fixture: a miniature StatRegistry at the real header path. Every
// access through it is classified stat-counter (mergeable).

#ifndef FIXTURE_SIM_STATS_HH
#define FIXTURE_SIM_STATS_HH

namespace fixture
{

class StatRegistry
{
  public:
    double &counter(int id);
    double counterValue(int id) const;
    void resetAll();

  private:
    double only_counter = 0;
};

} // namespace fixture

#endif // FIXTURE_SIM_STATS_HH
