// Fixture: the dir-relative decoy for widget.hh's "dram/cell.hh"
// include. If resolution preferred the including file's directory
// over <root>/src, the edge would land here (sim -> sim, quiet) and
// the expected back-edge would not fire.

#ifndef FIXTURE_SIM_DRAM_CELL_HH
#define FIXTURE_SIM_DRAM_CELL_HH

namespace fixture
{

struct SimLocalCell
{
    int charge = 0;
};

} // namespace fixture

#endif // FIXTURE_SIM_DRAM_CELL_HH
