// Fixture: include resolution order. "dram/cell.hh" matches BOTH the
// root-src candidate (src/dram/cell.hh — a sim -> dram back-edge)
// and this file's directory (src/sim/dram/cell.hh — same-module,
// quiet). Root-src must win, so the back-edge fires; a tool that
// tried the including file's directory first would stay silent here
// and fail the self-test. "detail/gear.hh" exists only relative to
// this directory and pins the fallback: dir-relative resolution with
// a subdirectory component, same-module, quiet.

#ifndef FIXTURE_SIM_WIDGET_HH
#define FIXTURE_SIM_WIDGET_HH

#include "dram/cell.hh" // beacon-lint: expect(layer-back-edge)
#include "detail/gear.hh"

namespace fixture
{

struct Widget
{
    int spin() const { return 0; }
};

} // namespace fixture

#endif // FIXTURE_SIM_WIDGET_HH
