// Fixture: a miniature EventQueue at the real header path, so the
// shared-state pass indexes its surface (schedule* mutating, now()
// const) exactly as it does for the production class.

#ifndef FIXTURE_SIM_EVENT_QUEUE_HH
#define FIXTURE_SIM_EVENT_QUEUE_HH

#include "common/util.hh"

namespace fixture
{

class EventQueue
{
  public:
    unsigned long now() const { return tick; }
    void schedule(unsigned long when, int token);
    void scheduleIn(unsigned long delta, int token);
    void cancel(int token);

  private:
    unsigned long tick = 0;
    int next_token = 0;
};

} // namespace fixture

#endif // FIXTURE_SIM_EVENT_QUEUE_HH
