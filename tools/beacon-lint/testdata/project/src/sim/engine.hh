// Fixture: the sim layer reaching *up* into dram — the include/layer
// pass must flag the back-edge (sim may depend only on common).

#ifndef FIXTURE_SIM_ENGINE_HH
#define FIXTURE_SIM_ENGINE_HH

#include "common/util.hh"
#include "dram/bank.hh" // beacon-lint: expect(layer-back-edge)
#include "sim/event_queue.hh"

namespace fixture
{

inline int
engineStep(EventQueue &eq)
{
    return int(eq.now()) + bankRows();
}

} // namespace fixture

#endif // FIXTURE_SIM_ENGINE_HH
