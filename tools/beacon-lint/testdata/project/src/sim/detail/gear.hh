// Fixture: reachable only relative to src/sim (there is no
// src/detail/), so resolving widget.hh's "detail/gear.hh" include
// exercises the dir-relative fallback with a subdirectory component.
// Same module — no finding.

#ifndef FIXTURE_SIM_DETAIL_GEAR_HH
#define FIXTURE_SIM_DETAIL_GEAR_HH

namespace fixture
{

struct Gear
{
    int teeth = 12;
};

} // namespace fixture

#endif // FIXTURE_SIM_DETAIL_GEAR_HH
