// Fixture: the bottom of the layer DAG — clean, and contributes one
// mutable namespace-scope global to the shared-state inventory.

#ifndef FIXTURE_COMMON_UTIL_HH
#define FIXTURE_COMMON_UTIL_HH

namespace fixture
{

// Inventoried as a mutable global (kind "global", module "common").
inline int debug_level = 0;

inline int
clampLevel(int level)
{
    return level < 0 ? 0 : level;
}

} // namespace fixture

#endif // FIXTURE_COMMON_UTIL_HH
