// Fixture: determinism-rand must flag non-seedable randomness.

#include <cstdlib>
#include <random>

int
badRandomness()
{
    std::srand(42); // beacon-lint: expect(determinism-rand)
    int x = std::rand(); // beacon-lint: expect(determinism-rand)
    std::random_device rd; // beacon-lint: expect(determinism-rand)
    return x + int(rd());
}

int
goodRandomness()
{
    // The repo's own deterministic generator is fine.
    beacon::Rng rng(7);
    // An identifier ending in "rand" must not fire.
    int brand(int seed);
    return int(rng()) + brand(3);
}

int
auditedRandomness()
{
    std::srand(1); // beacon-lint: allow(determinism-rand)
    return std::rand(); // beacon-lint: allow(determinism-rand)
}
