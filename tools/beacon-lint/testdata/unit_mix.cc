// Fixture: unit-mix must flag arithmetic recombining distinct strong
// unit types, both direct construction and via the value() escape
// hatch. (The type system rejects the first form at compile time;
// the lint reports it even in headers that never get compiled.)

#include "common/units.hh"

using namespace beacon;

double
mixedArithmetic()
{
    auto broken = Cycles{4} + Bytes{8}; // beacon-lint: expect(unit-mix)

    Cycles cycles{100};
    Bytes bytes{64};
    Picojoules energy{2.5};

    double a = cycles.value() + bytes.value(); // beacon-lint: expect(unit-mix)
    double b = energy.value() / bytes.value(); // beacon-lint: expect(unit-mix)
    return a + b + double(broken.value());
}

double
sameUnitArithmetic()
{
    Cycles first{1};
    Cycles second{2};
    Bytes payload{32};
    // Same dimension: fine (and ratio() is the idiomatic form).
    double scale = first.value() + second.value();
    // Scalar scaling keeps the dimension: fine.
    Bytes doubled = payload * 2;
    return scale + double(doubled.value());
}

double
auditedCrossing(Cycles cycles, Bytes bytes)
{
    // Dimension-crossing math belongs in named helpers
    // (cyclesToTicks, transferTime); this audited site predates
    // them.
    // beacon-lint: allow(unit-mix)
    return cycles.value() * bytes.value();
}
