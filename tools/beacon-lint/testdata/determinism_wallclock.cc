// Fixture: determinism-wallclock must flag host-time sources and
// honour allow() annotations. Not compiled — scanned by --self-test.

#include <chrono>
#include <ctime>

double
wallSeconds()
{
    auto t0 = std::chrono::system_clock::now(); // beacon-lint: expect(determinism-wallclock)
    auto t1 = std::chrono::steady_clock::now(); // beacon-lint: expect(determinism-wallclock)
    std::time_t now = time(nullptr); // beacon-lint: expect(determinism-wallclock)
    (void)t0;
    (void)t1;
    return double(now);
}

double
falsePositives()
{
    // Identifiers that merely contain "time" must not fire.
    double run_time = runTime();
    double uptime = lifetime(run_time);
    const char *msg = "system_clock in a string is fine";
    (void)msg;
    return uptime;
}

double
auditedWallClock()
{
    // Progress reporting that never reaches golden output.
    // beacon-lint: allow(determinism-wallclock)
    auto t = std::chrono::steady_clock::now();
    auto u = std::chrono::steady_clock::now(); // beacon-lint: allow(determinism-wallclock)
    (void)t;
    (void)u;
    return 0;
}
