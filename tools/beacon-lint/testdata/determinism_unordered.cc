// Fixture: determinism-unordered-iter must flag range-for over
// unordered containers declared in the same file, and only those.

#include <map>
#include <unordered_map>
#include <unordered_set>

void
emitStats()
{
    std::unordered_map<int, int> counts;
    std::unordered_set<long> seen;
    std::map<int, int> sorted;

    for (const auto &kv : counts) { // beacon-lint: expect(determinism-unordered-iter)
        (void)kv;
    }
    for (long v : seen) { // beacon-lint: expect(determinism-unordered-iter)
        (void)v;
    }
    for (const auto &kv : sorted) { // ordered: fine
        (void)kv;
    }
    for (int i = 0; i < 4; ++i) { // classic for: fine
        (void)i;
    }
}

void
auditedIteration()
{
    std::unordered_map<int, int> histogram;
    // Order-independent accumulation (commutative integer sums).
    // beacon-lint: allow(determinism-unordered-iter)
    for (const auto &kv : histogram) {
        (void)kv;
    }
}
