// Fixture: a well-behaved file — no check may fire. Mentions of
// rand(), new, delete, and system_clock inside comments and string
// literals must be invisible to the lexical checks.

#include <map>
#include <memory>

const char *const banner =
    "system_clock rand() new delete for (x : unordered)";

int
wellBehaved()
{
    std::map<int, int> ordered;
    ordered[1] = 2;
    int total = 0;
    for (const auto &kv : ordered)
        total += kv.second;
    auto owned = std::make_unique<int>(total);
    return *owned;
}
