// Fixture: raw-new-delete must flag manual allocation but leave
// deleted special members and identifiers alone.

#include <memory>

struct Widget
{
    Widget(const Widget &) = delete; // deleted member: fine
    Widget &operator=(const Widget &) = delete; // fine
};

void
manualAllocation()
{
    int *p = new int[4]; // beacon-lint: expect(raw-new-delete)
    delete[] p; // beacon-lint: expect(raw-new-delete)
    Widget *w = new Widget; // beacon-lint: expect(raw-new-delete)
    delete w; // beacon-lint: expect(raw-new-delete)
}

void
ownedAllocation()
{
    auto w = std::make_unique<Widget>();
    // Words embedding "new"/"delete" must not fire: renewal,
    // undeleted.
    int renewal = 0;
    int undeleted = renewal;
    (void)undeleted;
}

void
auditedAllocation(Widget *arena)
{
    // Placement-style arena handoff, audited.
    delete arena; // beacon-lint: allow(raw-new-delete)
}
