// Fixture: an allow() above a multi-line statement suppresses
// findings on the statement's continuation lines too — the marker
// naturally sits above the first line, but the lexical checks report
// the line the pattern matches on, which may be a continuation.
// Not compiled — scanned by --self-test.

#include <chrono>

double
suppressedContinuation()
{
    // beacon-lint: allow(determinism-wallclock)
    double elapsed =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now()
                .time_since_epoch())
            .count();
    return elapsed;
}

double
negativeControl()
{
    // The previous statement's allow() must not leak past the
    // statement boundary: this is a fresh statement, so the same
    // pattern still fires.
    double elapsed =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() // beacon-lint: expect(determinism-wallclock)
                .time_since_epoch())
            .count();
    return elapsed;
}
