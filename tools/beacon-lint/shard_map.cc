/**
 * @file
 * `beacon-shardmap-1` JSON emission.
 *
 * The report must be byte-identical across machines and build
 * directories: paths are repo-relative with forward slashes, every
 * array is sorted by the pass that produced it, and the writer emits
 * a fixed 2-space-indent layout with '\n' line endings. The
 * committed golden (tools/beacon-lint/shardmap_golden.json) is
 * diffed against a fresh run by ctest and CI.
 */

#include "analysis.hh"

#include <sstream>

namespace beacon_lint
{

namespace
{

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            out += c;
        }
    }
    return out;
}

std::string
quoted(const std::string &text)
{
    return "\"" + jsonEscape(text) + "\"";
}

} // namespace

std::string
shardMapJson(const Project &, const ShardMap &map)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"schema\": \"beacon-shardmap-1\",\n";

    os << "  \"classes\": [\n";
    for (std::size_t i = 0; i < map.classes.size(); ++i) {
        const ClassSurface &surface = map.classes[i];
        std::size_t n_const = 0;
        for (const auto &[name, method] : surface.methods)
            if (method.is_const)
                ++n_const;
        os << "    {\"name\": " << quoted(surface.name)
           << ", \"module\": " << quoted(surface.module)
           << ", \"header\": " << quoted(surface.header)
           << ", \"mutable_fields\": "
           << surface.mutable_fields.size()
           << ", \"const_methods\": " << n_const
           << ", \"mutating_methods\": "
           << surface.methods.size() - n_const << "}"
           << (i + 1 < map.classes.size() ? "," : "") << "\n";
    }
    os << "  ],\n";

    os << "  \"globals\": [\n";
    for (std::size_t i = 0; i < map.globals.size(); ++i) {
        const GlobalState &state = map.globals[i];
        os << "    {\"name\": " << quoted(state.name)
           << ", \"kind\": " << quoted(state.kind)
           << ", \"module\": " << quoted(state.module)
           << ", \"file\": " << quoted(state.file)
           << ", \"line\": " << state.line << ", \"atomic\": "
           << (state.atomic ? "true" : "false") << "}"
           << (i + 1 < map.globals.size() ? "," : "") << "\n";
    }
    os << "  ],\n";

    os << "  \"accesses\": [\n";
    for (std::size_t i = 0; i < map.accesses.size(); ++i) {
        const AccessRecord &record = map.accesses[i];
        os << "    {\"class\": " << quoted(record.class_name)
           << ", \"member\": " << quoted(record.member)
           << ", \"owner_module\": "
           << quoted(record.owner_module)
           << ", \"from\": " << quoted(record.from_file)
           << ", \"line\": " << record.line
           << ", \"from_module\": " << quoted(record.from_module)
           << ", \"category\": "
           << quoted(accessCategoryName(record.category))
           << ", \"annotated\": "
           << (record.annotated ? "true" : "false") << "}"
           << (i + 1 < map.accesses.size() ? "," : "") << "\n";
    }
    os << "  ],\n";

    std::size_t mediated = 0, counters = 0, reads = 0,
                mutations = 0;
    for (const AccessRecord &record : map.accesses) {
        switch (record.category) {
          case AccessCategory::EventQueueMediated:
            ++mediated;
            break;
          case AccessCategory::StatCounter:
            ++counters;
            break;
          case AccessCategory::Read:
            ++reads;
            break;
          case AccessCategory::DirectMutation:
            ++mutations;
            break;
        }
    }
    os << "  \"summary\": {\"event_queue_mediated\": " << mediated
       << ", \"stat_counter\": " << counters
       << ", \"read\": " << reads
       << ", \"direct_mutation\": " << mutations << "}\n";
    os << "}\n";
    return os.str();
}

} // namespace beacon_lint
