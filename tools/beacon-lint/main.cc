/**
 * @file
 * beacon-lint driver.
 *
 * Modes:
 *   beacon-lint -p build/compile_commands.json [paths...]
 *       Lint every translation unit in the compile database plus any
 *       extra files/directories given (headers are not listed in the
 *       database, so CI passes src/ as an extra path). Exit 1 when
 *       any unsuppressed finding remains.
 *
 *   beacon-lint --self-test tools/beacon-lint/testdata
 *       Run every check over the fixture files and assert that the
 *       findings match the `// beacon-lint: expect(<check>)` markers
 *       exactly — each check must both fire where expected and stay
 *       quiet where an allow() annotation suppresses it.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "checks.hh"
#include "source_file.hh"

namespace fs = std::filesystem;
using namespace beacon_lint;

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [-p compile_commands.json] [--check NAME]...\n"
        "          [--self-test DIR] [--list-checks] [paths...]\n",
        argv0);
    return 2;
}

bool
lintableExtension(const fs::path &path)
{
    const std::string ext = path.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
           ext == ".hpp" || ext == ".h";
}

/** Files named by a compile database (the "file" of each entry). */
std::vector<std::string>
compileDatabaseFiles(const std::string &db_path, std::string &error)
{
    std::ifstream in(db_path);
    if (!in) {
        error = "cannot open compile database " + db_path;
        return {};
    }
    std::ostringstream text;
    text << in.rdbuf();
    const std::string json = text.str();

    std::vector<std::string> files;
    std::string directory;
    static const std::regex kv_re(
        "\"(directory|file)\"\\s*:\\s*\"([^\"]*)\"");
    auto begin =
        std::sregex_iterator(json.begin(), json.end(), kv_re);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
        const std::string key = (*it)[1].str();
        const std::string value = (*it)[2].str();
        if (key == "directory") {
            directory = value;
        } else {
            fs::path p(value);
            if (p.is_relative() && !directory.empty())
                p = fs::path(directory) / p;
            files.push_back(
                fs::absolute(p).lexically_normal().string());
        }
    }
    return files;
}

/** Expand files/directories into lintable source files. */
void
collectPaths(const std::string &arg, std::set<std::string> &out)
{
    const fs::path p(arg);
    if (fs::is_directory(p)) {
        for (const auto &entry :
             fs::recursive_directory_iterator(p)) {
            if (entry.is_regular_file() &&
                lintableExtension(entry.path()))
                out.insert(fs::absolute(entry.path())
                               .lexically_normal()
                               .string());
        }
    } else {
        out.insert(fs::absolute(p).lexically_normal().string());
    }
}

int
runSelfTest(const std::string &dir)
{
    std::set<std::string> paths;
    collectPaths(dir, paths);
    if (paths.empty()) {
        std::fprintf(stderr,
                     "beacon-lint: no fixtures under %s\n",
                     dir.c_str());
        return 2;
    }

    int failures = 0;
    for (const std::string &path : paths) {
        SourceFile file;
        std::string error;
        if (!loadSourceFile(path, file, error)) {
            std::fprintf(stderr, "beacon-lint: %s\n", error.c_str());
            return 2;
        }
        // Self-test ignores layer scoping: fixtures exercise every
        // check no matter where the testdata directory lives.
        const std::vector<Finding> findings =
            lintFile(file, {}, /*respect_layers=*/false);
        std::set<std::pair<std::string, std::size_t>> actual;
        for (const Finding &f : findings)
            actual.insert({f.check, f.line});
        std::set<std::pair<std::string, std::size_t>> expected;
        for (const auto &e : expectedFindings(file))
            expected.insert(e);

        for (const auto &[check, line] : expected) {
            if (!actual.count({check, line})) {
                std::printf("FAIL %s:%zu: expected [%s] did not "
                            "fire\n",
                            path.c_str(), line, check.c_str());
                ++failures;
            }
        }
        for (const auto &[check, line] : actual) {
            if (!expected.count({check, line})) {
                std::printf("FAIL %s:%zu: unexpected [%s]\n",
                            path.c_str(), line, check.c_str());
                ++failures;
            }
        }
    }
    if (failures == 0) {
        std::printf("beacon-lint self-test: %zu fixture file(s) "
                    "OK\n",
                    paths.size());
        return 0;
    }
    std::printf("beacon-lint self-test: %d mismatch(es)\n",
                failures);
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string db_path;
    std::string self_test_dir;
    std::vector<std::string> enabled;
    std::set<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-p" && i + 1 < argc) {
            db_path = argv[++i];
        } else if (arg == "--check" && i + 1 < argc) {
            enabled.push_back(argv[++i]);
        } else if (arg == "--self-test" && i + 1 < argc) {
            self_test_dir = argv[++i];
        } else if (arg == "--list-checks") {
            for (const Check &check : allChecks())
                std::printf("%-26s %s\n", check.name.c_str(),
                            check.description.c_str());
            return 0;
        } else if (arg == "-h" || arg == "--help") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else {
            collectPaths(arg, paths);
        }
    }

    if (!self_test_dir.empty())
        return runSelfTest(self_test_dir);

    if (!db_path.empty()) {
        std::string error;
        for (const std::string &file :
             compileDatabaseFiles(db_path, error))
            paths.insert(file);
        if (!error.empty()) {
            std::fprintf(stderr, "beacon-lint: %s\n", error.c_str());
            return 2;
        }
    }
    if (paths.empty())
        return usage(argv[0]);

    std::size_t files = 0;
    std::vector<Finding> all;
    for (const std::string &path : paths) {
        // The compile database may name generated or third-party
        // files outside the repo layers; everything under Layer
        // scoping simply has no applicable checks.
        SourceFile file;
        std::string error;
        if (!loadSourceFile(path, file, error)) {
            std::fprintf(stderr, "beacon-lint: %s\n", error.c_str());
            return 2;
        }
        ++files;
        for (Finding &f :
             lintFile(file, enabled, /*respect_layers=*/true))
            all.push_back(std::move(f));
    }

    for (const Finding &f : all)
        std::printf("%s:%zu: warning: [%s] %s\n", f.path.c_str(),
                    f.line, f.check.c_str(), f.message.c_str());
    std::printf("beacon-lint: %zu file(s), %zu finding(s)\n", files,
                all.size());
    return all.empty() ? 0 : 1;
}
