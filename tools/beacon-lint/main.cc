/**
 * @file
 * beacon-lint driver.
 *
 * Modes:
 *   beacon-lint -p build/compile_commands.json \
 *               --repo-root . [paths...]
 *       Run the per-file checks over every translation unit in the
 *       compile database plus any extra files/directories given
 *       (headers are not listed in the database, so CI passes src/
 *       as an extra path), then — when --repo-root is given — the
 *       whole-program passes (include/layer DAG, shared-state
 *       inventory) over everything beneath <root>/src. Exit 1 when
 *       any unsuppressed finding remains.
 *
 *   beacon-lint --repo-root . --shard-map out.json
 *       Additionally write the `beacon-shardmap-1` report. The
 *       committed golden (tools/beacon-lint/shardmap_golden.json)
 *       must reproduce bit-identically; ctest and CI enforce it.
 *
 *   beacon-lint --repo-root . --lane-map out.json
 *       Additionally write the `beacon-lanemap-1` lane-ownership
 *       report (tools/beacon-lint/lanemap_golden.json is the
 *       committed golden, gated the same way).
 *
 *   beacon-lint --json ...
 *       Emit findings as a JSON array on stdout instead of the
 *       text lines (machine consumers; CI uses the text form with
 *       .github/problem-matchers/beacon-lint.json).
 *
 *   beacon-lint --self-test tools/beacon-lint/testdata
 *       Run every per-file check over the fixture files, and the
 *       whole-program passes over the mini source tree under
 *       testdata/project/, asserting that the findings match the
 *       `// beacon-lint: expect(<check>)` markers exactly — each
 *       check must both fire where expected and stay quiet where an
 *       allow()/shared-state() annotation suppresses it.
 *
 * Every file is lexed at most once per process (SourceCache), and
 * findings are deduplicated on (file, line, check): a header reached
 * through the compile database, an explicit path, and the include
 * closure reports each finding once.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "analysis.hh"
#include "checks.hh"
#include "source_cache.hh"
#include "source_file.hh"

namespace fs = std::filesystem;
using namespace beacon_lint;

namespace
{

/** Whole-program pass diagnostics (not per-file Check entries). */
const std::pair<const char *, const char *> pass_checks[] = {
    {"layer-back-edge",
     "include edge violating the architecture DAG"},
    {"include-cycle", "file-level include cycle"},
    {"shared-state-mutation",
     "unannotated cross-component direct mutation"},
    {"lane-violation",
     "unmediated cross-lane member access"},
};

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [-p compile_commands.json] [--check NAME]...\n"
        "          [--repo-root DIR] [--shard-map FILE]\n"
        "          [--lane-map FILE] [--json]\n"
        "          [--self-test DIR] [--list-checks] [paths...]\n",
        argv0);
    return 2;
}

bool
lintableExtension(const fs::path &path)
{
    const std::string ext = path.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
           ext == ".hpp" || ext == ".h";
}

/** Files named by a compile database (the "file" of each entry). */
std::vector<std::string>
compileDatabaseFiles(const std::string &db_path, std::string &error)
{
    std::ifstream in(db_path);
    if (!in) {
        error = "cannot open compile database " + db_path;
        return {};
    }
    std::ostringstream text;
    text << in.rdbuf();
    const std::string json = text.str();

    std::vector<std::string> files;
    std::string directory;
    static const std::regex kv_re(
        "\"(directory|file)\"\\s*:\\s*\"([^\"]*)\"");
    auto begin =
        std::sregex_iterator(json.begin(), json.end(), kv_re);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
        const std::string key = (*it)[1].str();
        const std::string value = (*it)[2].str();
        if (key == "directory") {
            directory = value;
        } else {
            fs::path p(value);
            if (p.is_relative() && !directory.empty())
                p = fs::path(directory) / p;
            files.push_back(SourceCache::canonical(p.string()));
        }
    }
    return files;
}

/** Expand files/directories into lintable source files. */
void
collectPaths(const std::string &arg, std::set<std::string> &out)
{
    const fs::path p(arg);
    if (fs::is_directory(p)) {
        for (const auto &entry :
             fs::recursive_directory_iterator(p)) {
            if (entry.is_regular_file() &&
                lintableExtension(entry.path()))
                out.insert(SourceCache::canonical(
                    entry.path().string()));
        }
    } else {
        out.insert(SourceCache::canonical(arg));
    }
}

bool
checkEnabled(const std::vector<std::string> &enabled,
             const std::string &name)
{
    return enabled.empty() ||
           std::find(enabled.begin(), enabled.end(), name) !=
               enabled.end();
}

/**
 * Run the whole-program passes rooted at @p root. Appends
 * annotation-filtered findings; returns the shard and lane maps
 * (empty on project-build failure, with @p error set).
 */
bool
runProjectPasses(const std::string &root, SourceCache &cache,
                 const std::vector<std::string> &enabled,
                 std::vector<Finding> &findings, Project &project,
                 ShardMap &map, LaneMap &lanes, std::string &error)
{
    if (!buildProject(root, cache, project, error))
        return false;

    std::vector<Finding> raw;
    runIncludeGraphPass(project, raw);
    map = runSharedStatePass(project, raw);
    lanes = runLaneMapPass(project, raw);

    for (Finding &finding : raw) {
        if (!checkEnabled(enabled, finding.check))
            continue;
        std::string file_error;
        const SourceFile *file =
            cache.get(finding.path, file_error);
        if (file &&
            findingAllowed(*file, finding.line, finding.check))
            continue;
        findings.push_back(std::move(finding));
    }
    return true;
}

int
runSelfTest(const std::string &dir)
{
    std::set<std::string> paths;
    collectPaths(dir, paths);
    if (paths.empty()) {
        std::fprintf(stderr,
                     "beacon-lint: no fixtures under %s\n",
                     dir.c_str());
        return 2;
    }

    SourceCache cache;
    using Key = std::pair<std::string, std::size_t>;
    std::map<std::string, std::set<Key>> actual, expected;

    for (const std::string &path : paths) {
        std::string error;
        const SourceFile *file = cache.get(path, error);
        if (!file) {
            std::fprintf(stderr, "beacon-lint: %s\n", error.c_str());
            return 2;
        }
        // Self-test ignores layer scoping: fixtures exercise every
        // check no matter where the testdata directory lives.
        for (const Finding &f : lintFile(*file, {}, false))
            actual[path].insert({f.check, f.line});
        for (const auto &e : expectedFindings(*file))
            expected[path].insert(e);
        actual[path]; // make quiet files participate both ways
    }

    // The whole-program passes run over the fixture source tree.
    const fs::path project_dir = fs::path(dir) / "project";
    if (fs::is_directory(project_dir)) {
        std::vector<Finding> findings;
        Project project;
        ShardMap map;
        LaneMap lanes;
        std::string error;
        if (!runProjectPasses(project_dir.string(), cache, {},
                              findings, project, map, lanes,
                              error)) {
            std::fprintf(stderr, "beacon-lint: %s\n",
                         error.c_str());
            return 2;
        }
        for (const Finding &f : findings)
            actual[f.path].insert({f.check, f.line});
    } else {
        std::fprintf(stderr,
                     "beacon-lint: warning: no project/ fixture "
                     "tree under %s; whole-program passes not "
                     "self-tested\n",
                     dir.c_str());
    }

    int failures = 0;
    std::size_t files = 0;
    for (const auto &[path, want] : expected)
        actual[path]; // expected-only files still compared
    for (const auto &[path, got] : actual) {
        ++files;
        const std::set<Key> &want = expected[path];
        for (const auto &[check, line] : want) {
            if (!got.count({check, line})) {
                std::printf("FAIL %s:%zu: expected [%s] did not "
                            "fire\n",
                            path.c_str(), line, check.c_str());
                ++failures;
            }
        }
        for (const auto &[check, line] : got) {
            if (!want.count({check, line})) {
                std::printf("FAIL %s:%zu: unexpected [%s]\n",
                            path.c_str(), line, check.c_str());
                ++failures;
            }
        }
    }
    if (failures == 0) {
        std::printf("beacon-lint self-test: %zu fixture file(s) "
                    "OK\n",
                    files);
        return 0;
    }
    std::printf("beacon-lint self-test: %d mismatch(es)\n",
                failures);
    return 1;
}

/** Write @p text to @p path, or to stdout when @p path is "-". */
bool
writeArtifact(const std::string &path, const std::string &text)
{
    if (path == "-") {
        std::fwrite(text.data(), 1, text.size(), stdout);
        return true;
    }
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        std::fprintf(stderr, "beacon-lint: cannot write %s\n",
                     path.c_str());
        return false;
    }
    out << text;
    return true;
}

/**
 * Dedupe @p all on (file, line, check) and sort for stable output:
 * a header reached through N translation units, an explicit path,
 * and the include closure reports each finding once.
 */
std::vector<const Finding *>
dedupeFindings(const std::vector<Finding> &all)
{
    std::set<std::tuple<std::string, std::size_t, std::string>>
        seen;
    std::vector<const Finding *> unique;
    for (const Finding &f : all)
        if (seen.insert({f.path, f.line, f.check}).second)
            unique.push_back(&f);
    std::sort(unique.begin(), unique.end(),
              [](const Finding *a, const Finding *b) {
                  return std::tie(a->path, a->line, a->check) <
                         std::tie(b->path, b->line, b->check);
              });
    return unique;
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            out += c;
        }
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string db_path;
    std::string self_test_dir;
    std::string repo_root;
    std::string shard_map_path;
    std::string lane_map_path;
    bool json_output = false;
    std::vector<std::string> enabled;
    std::set<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-p" && i + 1 < argc) {
            db_path = argv[++i];
        } else if (arg == "--check" && i + 1 < argc) {
            enabled.push_back(argv[++i]);
        } else if (arg == "--self-test" && i + 1 < argc) {
            self_test_dir = argv[++i];
        } else if (arg == "--repo-root" && i + 1 < argc) {
            repo_root = argv[++i];
        } else if (arg == "--shard-map" && i + 1 < argc) {
            shard_map_path = argv[++i];
        } else if (arg == "--lane-map" && i + 1 < argc) {
            lane_map_path = argv[++i];
        } else if (arg == "--json") {
            json_output = true;
        } else if (arg == "--list-checks") {
            for (const Check &check : allChecks())
                std::printf("%-26s %s\n", check.name.c_str(),
                            check.description.c_str());
            for (const auto &[name, description] : pass_checks)
                std::printf("%-26s %s (whole-program; needs "
                            "--repo-root)\n",
                            name, description);
            return 0;
        } else if (arg == "-h" || arg == "--help") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else {
            collectPaths(arg, paths);
        }
    }

    if (!self_test_dir.empty())
        return runSelfTest(self_test_dir);

    if (!db_path.empty()) {
        std::string error;
        for (const std::string &file :
             compileDatabaseFiles(db_path, error))
            paths.insert(file);
        if (!error.empty()) {
            std::fprintf(stderr, "beacon-lint: %s\n", error.c_str());
            return 2;
        }
    }
    if (!shard_map_path.empty() && repo_root.empty()) {
        std::fprintf(stderr,
                     "beacon-lint: --shard-map needs --repo-root\n");
        return 2;
    }
    if (!lane_map_path.empty() && repo_root.empty()) {
        std::fprintf(stderr,
                     "beacon-lint: --lane-map needs --repo-root\n");
        return 2;
    }
    if (paths.empty() && repo_root.empty())
        return usage(argv[0]);

    SourceCache cache;
    std::vector<Finding> all;

    std::size_t files = 0;
    for (const std::string &path : paths) {
        // The compile database may name generated or third-party
        // files outside the repo layers; everything under Layer
        // scoping simply has no applicable checks.
        std::string error;
        const SourceFile *file = cache.get(path, error);
        if (!file) {
            std::fprintf(stderr, "beacon-lint: %s\n", error.c_str());
            return 2;
        }
        ++files;
        for (Finding &f : lintFile(*file, enabled, true))
            all.push_back(std::move(f));
    }

    if (!repo_root.empty()) {
        Project project;
        ShardMap map;
        LaneMap lanes;
        std::string error;
        if (!runProjectPasses(repo_root, cache, enabled, all,
                              project, map, lanes, error)) {
            std::fprintf(stderr, "beacon-lint: %s\n", error.c_str());
            return 2;
        }
        if (!shard_map_path.empty() &&
            !writeArtifact(shard_map_path,
                           shardMapJson(project, map)))
            return 2;
        if (!lane_map_path.empty() &&
            !writeArtifact(lane_map_path,
                           laneMapJson(project, lanes)))
            return 2;
    }

    const std::vector<const Finding *> unique =
        dedupeFindings(all);

    if (json_output) {
        std::printf("[");
        for (std::size_t i = 0; i < unique.size(); ++i) {
            const Finding *f = unique[i];
            std::printf("%s\n  {\"file\": \"%s\", \"line\": %zu, "
                        "\"check\": \"%s\", \"message\": \"%s\"}",
                        i ? "," : "",
                        jsonEscape(f->path).c_str(), f->line,
                        jsonEscape(f->check).c_str(),
                        jsonEscape(f->message).c_str());
        }
        std::printf("%s]\n", unique.empty() ? "" : "\n");
    } else {
        for (const Finding *f : unique)
            std::printf("%s:%zu: warning: [%s] %s\n",
                        f->path.c_str(), f->line, f->check.c_str(),
                        f->message.c_str());
        std::printf("beacon-lint: %zu file(s) lexed (%zu cache "
                    "hits), %zu finding(s)\n",
                    cache.filesLexed(), cache.cacheHits(),
                    unique.size());
    }
    (void)files;
    return unique.empty() ? 0 : 1;
}
