/**
 * @file
 * Check implementations.
 *
 * beacon-lint works on a lexical (comment/string-stripped) view of
 * each translation unit, not a full AST, so every check is an
 * honest heuristic:
 *
 *  - declarations recognised only when they fit on one line;
 *  - range-for headers matched on one line;
 *  - capture lists matched within a bounded window after the
 *    scheduling call.
 *
 * The strong unit types in src/common/units.hh carry the real
 * compile-time enforcement; these checks exist to catch the escape
 * hatches (value(), wall clocks, unordered iteration) that the type
 * system cannot see. Keep them conservative: a check that cries wolf
 * gets annotated away wholesale and protects nothing.
 */

#include "checks.hh"

#include <algorithm>
#include <map>
#include <regex>
#include <set>

namespace beacon_lint
{

namespace
{

/** True if the normalised path contains "/<dir>/" or starts with
 *  "<dir>/". */
bool
underDir(const std::string &path, const std::string &dir)
{
    if (path.rfind(dir + "/", 0) == 0)
        return true;
    return path.find("/" + dir + "/") != std::string::npos;
}

void
addFinding(std::vector<Finding> &out, const SourceFile &file,
           std::size_t line0, const std::string &check,
           const std::string &message)
{
    out.push_back({file.path, line0 + 1, check, message});
}

// --- determinism-wallclock ------------------------------------------

const char *const wallclock_name = "determinism-wallclock";

void
checkWallclock(const SourceFile &file, std::vector<Finding> &out)
{
    static const std::regex clock_re(
        "\\b(system_clock|steady_clock|high_resolution_clock|"
        "gettimeofday|clock_gettime|timespec_get)\\b");
    // A call of the C library time(): the preceding character must
    // not extend an identifier or qualify a member (run_time(),
    // obj.time(), chrono::time_point are all fine).
    static const std::regex time_re(
        "(^|[^A-Za-z0-9_:.>])time\\s*\\(");
    for (std::size_t i = 0; i < file.lines(); ++i) {
        const std::string &code = file.code[i];
        std::smatch m;
        if (std::regex_search(code, m, clock_re)) {
            addFinding(out, file, i, wallclock_name,
                       "wall-clock source '" + m[1].str() +
                           "' in simulation code; results must not "
                           "depend on host time");
        } else if (std::regex_search(code, time_re)) {
            addFinding(out, file, i, wallclock_name,
                       "call of time() in simulation code; results "
                       "must not depend on host time");
        }
    }
}

// --- determinism-rand -----------------------------------------------

const char *const rand_name = "determinism-rand";

void
checkRand(const SourceFile &file, std::vector<Finding> &out)
{
    static const std::regex rand_re(
        "\\b(rand|srand|drand48|lrand48|rand_r)\\s*\\(|"
        "\\brandom_device\\b");
    for (std::size_t i = 0; i < file.lines(); ++i) {
        if (std::regex_search(file.code[i], rand_re))
            addFinding(out, file, i, rand_name,
                       "non-seedable randomness; use the "
                       "deterministic beacon::Rng instead");
    }
}

// --- determinism-time-seed ------------------------------------------

const char *const time_seed_name = "determinism-time-seed";

/**
 * Clock-seeded randomness. The wallclock/rand checks catch the raw
 * ingredients; this one catches the *combination* that silently
 * de-determinises a run even when each ingredient looks sanctioned:
 * an RNG constructed or re-seeded from a time source.
 */
void
checkTimeSeed(const SourceFile &file, std::vector<Finding> &out)
{
    // srand(time(...)) / srand(clock()) — the classic C idiom.
    static const std::regex srand_re(
        "\\bsrand\\s*\\(\\s*(?:unsigned\\s*\\(?\\s*)?"
        "(time|clock)\\s*\\(");
    // An engine constructed from a clock reading.
    static const std::regex ctor_re(
        "\\b(mt19937(?:_64)?|minstd_rand0?|default_random_engine|"
        "ranlux(?:24|48)(?:_base)?|knuth_b|Rng)\\s+\\w+\\s*[({]"
        "[^;]*(chrono|time_since_epoch|::now\\s*\\(|"
        "\\btime\\s*\\(|\\bclock\\s*\\()");
    // An engine re-seeded from a clock reading.
    static const std::regex seed_re(
        "[.>]\\s*seed\\s*\\([^;]*(chrono|time_since_epoch|"
        "::now\\s*\\(|\\btime\\s*\\(|\\bclock\\s*\\()");
    for (std::size_t i = 0; i < file.lines(); ++i) {
        const std::string &code = file.code[i];
        if (std::regex_search(code, srand_re) ||
            std::regex_search(code, ctor_re) ||
            std::regex_search(code, seed_re))
            addFinding(out, file, i, time_seed_name,
                       "RNG seeded from a clock; seeds must come "
                       "from the experiment configuration so runs "
                       "replay bit-identically");
    }
}

// --- determinism-unordered-iter -------------------------------------

const char *const unordered_name = "determinism-unordered-iter";

/** Variables declared with an unordered container type on one line. */
std::set<std::string>
unorderedVars(const SourceFile &file)
{
    static const std::regex decl_re(
        "\\bunordered_(?:map|set|multimap|multiset)\\s*<[^;{]*>\\s+"
        "(\\w+)\\s*[;={(]");
    std::set<std::string> vars;
    for (const std::string &code : file.code) {
        auto begin = std::sregex_iterator(code.begin(), code.end(),
                                          decl_re);
        for (auto it = begin; it != std::sregex_iterator(); ++it)
            vars.insert((*it)[1].str());
    }
    return vars;
}

void
checkUnorderedIter(const SourceFile &file, std::vector<Finding> &out)
{
    const std::set<std::string> vars = unorderedVars(file);
    if (vars.empty())
        return;
    static const std::regex range_for_re(
        "\\bfor\\s*\\([^;()]*:\\s*([^)]*)\\)");
    static const std::regex ident_re("\\b(\\w+)\\b");
    for (std::size_t i = 0; i < file.lines(); ++i) {
        std::smatch m;
        if (!std::regex_search(file.code[i], m, range_for_re))
            continue;
        const std::string range = m[1].str();
        auto begin = std::sregex_iterator(range.begin(), range.end(),
                                          ident_re);
        for (auto it = begin; it != std::sregex_iterator(); ++it) {
            if (vars.count((*it)[1].str())) {
                addFinding(
                    out, file, i, unordered_name,
                    "iteration over unordered container '" +
                        (*it)[1].str() +
                        "'; hash-seed-dependent order must not "
                        "reach stats/report/golden emission");
                break;
            }
        }
    }
}

// --- sim-capture-ref ------------------------------------------------

const char *const capture_name = "sim-capture-ref";

/** True if @p text holds a lambda introducer capturing by
 *  reference. */
bool
hasRefCapture(const std::string &text)
{
    static const std::regex lambda_re(
        "\\[([A-Za-z0-9_,&=*\\s]*)\\]\\s*[({]");
    auto begin =
        std::sregex_iterator(text.begin(), text.end(), lambda_re);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
        const std::string captures = (*it)[1].str();
        if (captures.find('&') != std::string::npos)
            return true;
    }
    return false;
}

void
checkCaptureRef(const SourceFile &file, std::vector<Finding> &out)
{
    static const std::regex sched_re(
        "\\b(schedule|scheduleIn|scheduleAt)\\s*\\(");
    constexpr std::size_t window = 12; // lines per call statement
    for (std::size_t i = 0; i < file.lines(); ++i) {
        std::smatch m;
        if (!std::regex_search(file.code[i], m, sched_re))
            continue;
        // Collect the call's argument text: from the opening paren
        // until the parens balance out (bounded window).
        std::string args;
        int depth = 0;
        bool open_seen = false;
        for (std::size_t j = i;
             j < file.lines() && j < i + window && (depth > 0 ||
                                                    !open_seen);
             ++j) {
            const std::string &code = file.code[j];
            std::size_t k =
                j == i ? std::size_t(m.position(0)) : 0;
            for (; k < code.size(); ++k) {
                if (code[k] == '(') {
                    ++depth;
                    open_seen = true;
                } else if (code[k] == ')') {
                    if (--depth == 0)
                        break;
                }
                if (open_seen)
                    args += code[k];
            }
            args += '\n';
            if (open_seen && depth == 0)
                break;
        }
        if (hasRefCapture(args))
            addFinding(out, file, i, capture_name,
                       "event callback captures by reference; the "
                       "callback may outlive the scheduling scope");
    }
}

// --- raw-new-delete -------------------------------------------------

const char *const new_delete_name = "raw-new-delete";

void
checkNewDelete(const SourceFile &file, std::vector<Finding> &out)
{
    static const std::regex new_re("\\bnew\\s+[A-Za-z_(:]");
    static const std::regex delete_re("\\bdelete\\b(?!\\s*;)");
    static const std::regex deleted_fn_re("=\\s*delete\\b");
    for (std::size_t i = 0; i < file.lines(); ++i) {
        const std::string &code = file.code[i];
        if (std::regex_search(code, new_re))
            addFinding(out, file, i, new_delete_name,
                       "raw new in src/; use std::make_unique or a "
                       "container");
        std::smatch m;
        if (std::regex_search(code, m, delete_re) &&
            !std::regex_search(code, deleted_fn_re))
            addFinding(out, file, i, new_delete_name,
                       "raw delete in src/; prefer owning smart "
                       "pointers");
    }
}

// --- unit-mix -------------------------------------------------------

const char *const unit_mix_name = "unit-mix";

const char *const unit_types[] = {"Cycles", "Bytes", "Picojoules",
                                  "RowId", "TenantId"};

/** Variables declared with a strong unit type on one line. */
std::map<std::string, std::string>
unitVars(const SourceFile &file)
{
    static const std::regex decl_re(
        "\\b(Cycles|Bytes|Picojoules|RowId|TenantId)\\s+"
        "(\\w+)\\s*[;={,)]");
    std::map<std::string, std::string> vars;
    for (const std::string &code : file.code) {
        auto begin = std::sregex_iterator(code.begin(), code.end(),
                                          decl_re);
        for (auto it = begin; it != std::sregex_iterator(); ++it)
            vars[(*it)[2].str()] = (*it)[1].str();
    }
    return vars;
}

void
checkUnitMix(const SourceFile &file, std::vector<Finding> &out)
{
    // Form 1: arithmetic directly between braced constructions of
    // two different unit types (would not even compile, but the
    // lint catches it before the compiler does and in fixtures).
    static const std::regex ctor_mix_re(
        "\\b(Cycles|Bytes|Picojoules|RowId|TenantId)\\s*\\{[^{}]*\\}"
        "\\s*[-+*/%]\\s*"
        "(Cycles|Bytes|Picojoules|RowId|TenantId)\\s*\\{");
    // Form 2: the type system's escape hatch — value() of two
    // different unit-typed variables recombined in one expression.
    static const std::regex value_mix_re(
        "\\b(\\w+)\\.value\\(\\)\\s*[-+*/%]\\s*"
        "(\\w+)\\.value\\(\\)");

    const std::map<std::string, std::string> vars = unitVars(file);
    for (std::size_t i = 0; i < file.lines(); ++i) {
        const std::string &code = file.code[i];
        std::smatch m;
        if (std::regex_search(code, m, ctor_mix_re) &&
            m[1].str() != m[2].str()) {
            addFinding(out, file, i, unit_mix_name,
                       "arithmetic mixes " + m[1].str() + " and " +
                           m[2].str());
            continue;
        }
        if (std::regex_search(code, m, value_mix_re)) {
            auto a = vars.find(m[1].str());
            auto b = vars.find(m[2].str());
            if (a != vars.end() && b != vars.end() &&
                a->second != b->second) {
                addFinding(out, file, i, unit_mix_name,
                           "value() escape mixes " + a->second +
                               " ('" + m[1].str() + "') with " +
                               b->second + " ('" + m[2].str() +
                               "')");
            }
        }
    }
}

// --- annotations ----------------------------------------------------

/** Parse every `beacon-lint: <verb>(a, b)` in @p comment. */
void
parseMarkers(const std::string &comment, const std::string &verb,
             std::vector<std::string> &out)
{
    const std::regex marker_re("beacon-lint:\\s*" + verb +
                               "\\s*\\(([^)]*)\\)");
    auto begin = std::sregex_iterator(comment.begin(), comment.end(),
                                      marker_re);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
        const std::string list = (*it)[1].str();
        static const std::regex item_re("[\\w-]+");
        auto items = std::sregex_iterator(list.begin(), list.end(),
                                          item_re);
        for (auto jt = items; jt != std::sregex_iterator(); ++jt)
            out.push_back(jt->str());
    }
}

/**
 * First line (0-based) of the statement containing @p line0: walk up
 * while the nearest preceding non-blank code line does not end a
 * statement or block (';', '{', '}', ':' — labels and access
 * specifiers), so an allow() above a multi-line statement suppresses
 * findings on its continuation lines too. Bounded so a pathological
 * file cannot turn this quadratic.
 */
std::size_t
statementFirstLine(const SourceFile &file, std::size_t line0)
{
    constexpr std::size_t max_hops = 16;
    std::size_t first = line0;
    for (std::size_t hops = 0; first > 0 && hops < max_hops;
         ++hops) {
        // Nearest preceding line with any code on it.
        std::size_t prev = first;
        while (prev > 0) {
            --prev;
            if (file.code[prev].find_first_not_of(" \t") !=
                std::string::npos)
                break;
        }
        if (prev == first ||
            file.code[prev].find_first_not_of(" \t") ==
                std::string::npos)
            break;
        const std::string &code = file.code[prev];
        const char last = code[code.find_last_not_of(" \t")];
        if (last == ';' || last == '{' || last == '}' ||
            last == ':')
            break;
        first = prev;
    }
    return first;
}

/** Checks allowed on line @p line0 (same line, line above, the
 *  statement's first line or the line above that, or file-wide). */
bool
isAllowed(const SourceFile &file, std::size_t line0,
          const std::string &check,
          const std::vector<std::string> &file_allows)
{
    for (const std::string &c : file_allows)
        if (c == check)
            return true;
    std::vector<std::string> allows;
    parseMarkers(file.comments[line0], "allow", allows);
    if (line0 > 0)
        parseMarkers(file.comments[line0 - 1], "allow", allows);
    // A finding on a continuation line of a multi-line statement is
    // also suppressed by an allow() on (or above) the statement's
    // first line — where a human would naturally write it.
    const std::size_t first = statementFirstLine(file, line0);
    if (first < line0) {
        parseMarkers(file.comments[first], "allow", allows);
        if (first > 0)
            parseMarkers(file.comments[first - 1], "allow", allows);
    }
    return std::find(allows.begin(), allows.end(), check) !=
           allows.end();
}

} // namespace

bool
findingAllowed(const SourceFile &file, std::size_t line,
               const std::string &check)
{
    std::vector<std::string> file_allows;
    for (const std::string &comment : file.comments)
        parseMarkers(comment, "allow-file", file_allows);
    return isAllowed(file, line - 1, check, file_allows);
}

Layer
layerOf(const std::string &path)
{
    if (underDir(path, "src"))
        return Layer::Src;
    if (underDir(path, "bench"))
        return Layer::Bench;
    if (underDir(path, "examples"))
        return Layer::Examples;
    if (underDir(path, "tests"))
        return Layer::Tests;
    return Layer::Other;
}

const std::vector<Check> &
allChecks()
{
    static const std::vector<Check> checks = {
        {wallclock_name,
         "wall-clock time sources in simulation code",
         {Layer::Src, Layer::Bench, Layer::Examples},
         checkWallclock},
        {rand_name,
         "non-seedable randomness (rand, std::random_device)",
         {Layer::Src, Layer::Bench, Layer::Examples},
         checkRand},
        {time_seed_name,
         "RNG constructed or re-seeded from a time source",
         {Layer::Src, Layer::Bench, Layer::Examples},
         checkTimeSeed},
        {unordered_name,
         "iteration over unordered containers (hash-order leakage)",
         {Layer::Src, Layer::Bench, Layer::Examples},
         checkUnorderedIter},
        {capture_name,
         "EventQueue callbacks capturing by reference",
         {Layer::Src},
         checkCaptureRef},
        {new_delete_name,
         "raw new/delete in the simulator model",
         {Layer::Src},
         checkNewDelete},
        {unit_mix_name,
         "arithmetic mixing distinct strong unit types",
         {Layer::Src, Layer::Bench, Layer::Examples},
         checkUnitMix},
    };
    return checks;
}

std::vector<Finding>
lintFile(const SourceFile &file,
         const std::vector<std::string> &enabled,
         bool respect_layers)
{
    const Layer layer = layerOf(file.path);

    std::vector<std::string> file_allows;
    for (const std::string &comment : file.comments)
        parseMarkers(comment, "allow-file", file_allows);

    std::vector<Finding> findings;
    for (const Check &check : allChecks()) {
        if (respect_layers && !check.appliesTo(layer))
            continue;
        if (!enabled.empty() &&
            std::find(enabled.begin(), enabled.end(), check.name) ==
                enabled.end())
            continue;
        check.run(file, findings);
    }

    std::vector<Finding> kept;
    for (Finding &finding : findings) {
        if (!isAllowed(file, finding.line - 1, finding.check,
                       file_allows))
            kept.push_back(std::move(finding));
    }
    std::sort(kept.begin(), kept.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.check < b.check;
              });
    return kept;
}

std::vector<std::pair<std::string, std::size_t>>
expectedFindings(const SourceFile &file)
{
    std::vector<std::pair<std::string, std::size_t>> expected;
    for (std::size_t i = 0; i < file.lines(); ++i) {
        std::vector<std::string> checks;
        parseMarkers(file.comments[i], "expect", checks);
        for (const std::string &check : checks)
            expected.emplace_back(check, i + 1);
    }
    return expected;
}

} // namespace beacon_lint
