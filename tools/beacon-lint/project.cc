/**
 * @file
 * Project construction and the architecture DAG contract.
 */

#include "analysis.hh"

#include <algorithm>
#include <filesystem>

namespace fs = std::filesystem;

namespace beacon_lint
{

namespace
{

bool
lintableExtension(const fs::path &path)
{
    const std::string ext = path.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
           ext == ".hpp" || ext == ".h";
}

} // namespace

std::string
Project::relative(const std::string &path) const
{
    const std::string canon = SourceCache::canonical(path);
    std::string rel =
        fs::path(canon).lexically_relative(fs::path(root)).string();
    std::replace(rel.begin(), rel.end(), '\\', '/');
    return rel;
}

std::string
Project::moduleOf(const std::string &path) const
{
    const std::string rel = relative(path);
    if (rel.rfind("src/", 0) != 0)
        return "";
    const std::size_t start = 4;
    const std::size_t slash = rel.find('/', start);
    if (slash == std::string::npos)
        return ""; // a file directly under src/ has no module
    return rel.substr(start, slash - start);
}

bool
buildProject(const std::string &root, SourceCache &cache,
             Project &out, std::string &error)
{
    out.root = SourceCache::canonical(root);
    out.cache = &cache;
    out.files.clear();

    const fs::path src = fs::path(out.root) / "src";
    if (!fs::is_directory(src)) {
        error = "no src/ directory under " + out.root;
        return false;
    }
    for (const auto &entry : fs::recursive_directory_iterator(src)) {
        if (entry.is_regular_file() &&
            lintableExtension(entry.path()))
            out.files.push_back(
                SourceCache::canonical(entry.path().string()));
    }
    std::sort(out.files.begin(), out.files.end());

    // Lex everything up front so the passes never hit IO errors
    // mid-analysis.
    for (const std::string &file : out.files) {
        std::string file_error;
        if (!cache.get(file, file_error)) {
            error = file_error;
            return false;
        }
    }
    return true;
}

const std::set<std::string> *
allowedDeps(const std::string &module)
{
    // The DAG of docs/static_analysis.md. A module may always
    // include itself; tap modules (obs, check) may additionally be
    // included from anywhere (see isTapModule).
    static const std::map<std::string, std::set<std::string>> dag = {
        {"common", {}},
        {"sim", {"common"}},
        {"dram", {"common", "sim"}},
        {"cxl", {"common", "sim"}},
        {"ndp", {"common", "sim", "dram", "cxl"}},
        {"genomics", {"common"}},
        {"graph", {"common"}},
        {"memmgmt", {"common", "sim", "dram", "cxl", "ndp"}},
        {"accel",
         {"common", "sim", "dram", "cxl", "ndp", "memmgmt",
          "genomics", "graph"}},
        {"service",
         {"common", "sim", "dram", "cxl", "ndp", "memmgmt", "accel",
          "genomics", "graph"}},
        {"rack",
         {"common", "sim", "dram", "cxl", "ndp", "memmgmt", "accel",
          "genomics", "graph", "service"}},
        // Taps observe the kernels; they must never depend on the
        // component layers they are observed *from*, or the tap
        // edge would close a cycle.
        {"obs", {"common", "sim"}},
        {"check", {"common", "sim", "dram"}},
    };
    auto it = dag.find(module);
    return it == dag.end() ? nullptr : &it->second;
}

bool
isTapModule(const std::string &module)
{
    return module == "obs" || module == "check";
}

const char *
accessCategoryName(AccessCategory cat)
{
    switch (cat) {
      case AccessCategory::EventQueueMediated:
        return "event-queue-mediated";
      case AccessCategory::StatCounter:
        return "stat-counter";
      case AccessCategory::Read:
        return "read";
      case AccessCategory::DirectMutation:
        return "direct-mutation";
    }
    return "unknown";
}

} // namespace beacon_lint
