/**
 * @file
 * The lane-ownership pass.
 *
 * The sharded DES queue (src/sim/sharded_event_queue.hh) partitions
 * events onto worker lanes by home hint; exactness depends on every
 * in-window event touching only state owned by its own lane. The
 * shard map records *what* state is shared; this pass records *which
 * lane may touch it*:
 *
 *  1. **Domain assignment** — each core component class gets a static
 *     lane domain, seeded from the same home-hint partition the
 *     NdpSystem builder derives from MemRequest::completion_hint:
 *     CXLG-DIMM-resident components (DramController, DimmTimingModel,
 *     NdpModule, AtomicEngine) are per-instance-lane; the pool
 *     fabric and the orchestrator are lane-0; the sampler runs on
 *     the barrier lane; EventQueue and StatRegistry are mailbox
 *     channels (crossing through them is the sanctioned mechanism).
 *
 *  2. **Access walk** — every member access that the shard-map
 *     binder can resolve (`var.method(...)` against a core surface)
 *     is judged against the partition: same-domain accesses and
 *     mailbox traffic are safe; an access spelled inside a
 *     schedule()/scheduleIn()/scheduleAt()/stageEgress() call region
 *     is mediated (it runs later, on the lane the hint names); const
 *     accessors are recorded as reads (the runtime lane guard owns
 *     that residual risk); everything else is a `lane-violation`
 *     unless declared with `beacon-lint: lane(Class.member)`.
 *
 * Like every beacon-lint pass this is an honest lexical heuristic —
 * the point is a *reproducible* lane map (beacon-lanemap-1) that CI
 * can diff, verified dynamically by the BEACON_LANE_GUARD runtime
 * check and the sharded differential fuzzers.
 */

#include "analysis.hh"

#include <algorithm>
#include <regex>

namespace beacon_lint
{

namespace
{

/** Domain and hint provenance of one core class. */
struct LaneDomainSpec
{
    const char *class_name;
    LaneDomain domain;
    const char *hint_source;
};

const LaneDomainSpec lane_domains[] = {
    {"EventQueue", LaneDomain::Mailbox,
     "the lane-crossing channel itself"},
    {"StatRegistry", LaneDomain::Mailbox,
     "single-writer counters, structure mutex-guarded"},
    {"DramController", LaneDomain::PerInstance,
     "DramControllerParams::home_hint = 1 + dimm index"},
    {"DimmTimingModel", LaneDomain::PerInstance,
     "owned by its DramController, same lane"},
    {"NdpModule", LaneDomain::PerInstance,
     "NdpModuleParams::home_hint = partition's DIMM lane"},
    {"AtomicEngine", LaneDomain::PerInstance,
     "AtomicEngineParams::home_hint = partition's DIMM lane"},
    {"PoolFabric", LaneDomain::Lane0,
     "all sends run on the default lane"},
    {"PoolOrchestrator", LaneDomain::Lane0,
     "host/driver state, default lane"},
    {"Sampler", LaneDomain::BarrierOnly,
     "EventCat::Sampler events, workers quiesced"},
};

const LaneDomainSpec *
domainOf(const std::string &class_name)
{
    for (const LaneDomainSpec &spec : lane_domains)
        if (class_name == spec.class_name)
            return &spec;
    return nullptr;
}

/**
 * Lane domain the code of a src/ module executes under when no
 * enclosing class definition resolves: CXLG-DIMM component modules
 * run per-instance, the fabric/host layers run on lane 0, and
 * modules with no lane semantics (common, obs, check, workload
 * libraries, the queue itself) are exempt.
 */
const LaneDomain *
moduleDomain(const std::string &module)
{
    static const LaneDomain per_instance = LaneDomain::PerInstance;
    static const LaneDomain lane0 = LaneDomain::Lane0;
    if (module == "dram" || module == "ndp")
        return &per_instance;
    if (module == "cxl" || module == "service" ||
        module == "accel" || module == "memmgmt" ||
        module == "rack")
        return &lane0;
    return nullptr;
}

/**
 * Per-line enclosing lane domain of @p file: out-of-line member
 * definitions `LaneClass::method(...)` switch the region to that
 * class's domain until the next definition; everything else carries
 * the module fallback. Returns an empty vector for exempt modules.
 */
std::vector<const LaneDomain *>
enclosingDomains(const SourceFile &file, const std::string &module)
{
    const LaneDomain *fallback = moduleDomain(module);
    std::vector<const LaneDomain *> domains(file.lines(), fallback);

    static const std::regex def_re("\\b(\\w+)::(\\w+)\\s*\\(");
    const LaneDomain *current = fallback;
    for (std::size_t i = 0; i < file.lines(); ++i) {
        std::smatch m;
        if (std::regex_search(file.code[i], m, def_re)) {
            if (const LaneDomainSpec *spec = domainOf(m[1].str()))
                current = &spec->domain;
        }
        domains[i] = current;
    }
    return domains;
}

/**
 * Lines covered by the argument list of a schedule-family call
 * (schedule / scheduleIn / scheduleAt / stageEgress): an access
 * spelled there executes later, on the lane the call's hint names —
 * the mailbox mediation the partition is built on.
 */
std::vector<char>
mediatedLines(const SourceFile &file)
{
    std::vector<char> mediated(file.lines(), 0);
    static const std::regex call_re(
        "\\b(schedule|scheduleIn|scheduleAt|stageEgress)\\s*\\(");
    constexpr std::size_t window = 60; // lines per call statement
    for (std::size_t i = 0; i < file.lines(); ++i) {
        std::smatch m;
        if (!std::regex_search(file.code[i], m, call_re))
            continue;
        int depth = 0;
        bool open_seen = false;
        for (std::size_t j = i; j < file.lines() && j < i + window;
             ++j) {
            const std::string &code = file.code[j];
            std::size_t k = j == i ? std::size_t(m.position(0)) : 0;
            for (; k < code.size(); ++k) {
                if (code[k] == '(') {
                    ++depth;
                    open_seen = true;
                } else if (code[k] == ')' && open_seen) {
                    if (--depth == 0)
                        break;
                }
            }
            mediated[j] = 1;
            if (open_seen && depth == 0)
                break;
        }
    }
    return mediated;
}

/** `beacon-lint: lane(Class.member)` markers in @p comment. */
bool
laneAnnotated(const SourceFile &file, std::size_t line0,
              const std::string &class_name,
              const std::string &member)
{
    static const std::regex marker_re(
        "beacon-lint:\\s*lane\\s*\\(\\s*(\\w+)\\.(\\w+)\\s*\\)");
    for (std::size_t l : {line0, line0 - 1}) {
        if (l >= file.lines())
            continue;
        const std::string &comment = file.comments[l];
        auto begin = std::sregex_iterator(comment.begin(),
                                          comment.end(), marker_re);
        for (auto it = begin; it != std::sregex_iterator(); ++it)
            if ((*it)[1].str() == class_name &&
                (*it)[2].str() == member)
                return true;
    }
    return false;
}

void
walkFile(const SourceFile &file, const Project &project,
         const std::map<std::string, ClassSurface> &surfaces,
         LaneMap &map, std::vector<Finding> &findings)
{
    const std::string from_module = project.moduleOf(file.path);
    if (from_module.empty() || !moduleDomain(from_module))
        return; // exempt module: no lane semantics
    const std::map<std::string, const ClassSurface *> vars =
        bindCoreVariables(file, surfaces);
    if (vars.empty())
        return;

    const std::vector<const LaneDomain *> enclosing =
        enclosingDomains(file, from_module);
    const std::vector<char> mediated = mediatedLines(file);

    static const std::regex access_re(
        "(\\w+)\\s*(?:\\.|->)\\s*(\\w+)\\s*\\(");
    for (std::size_t i = 0; i < file.lines(); ++i) {
        const std::string &code = file.code[i];
        for (auto it = std::sregex_iterator(code.begin(),
                                            code.end(), access_re);
             it != std::sregex_iterator(); ++it) {
            const std::string var = (*it)[1].str();
            const std::string member = (*it)[2].str();
            auto vt = vars.find(var);
            if (vt == vars.end())
                continue;
            const ClassSurface &surface = *vt->second;
            const LaneDomainSpec *callee = domainOf(surface.name);
            if (!callee)
                continue;
            auto mt = surface.methods.find(member);
            if (mt == surface.methods.end())
                continue;

            LaneAccess access;
            access.class_name = surface.name;
            access.member = member;
            access.domain = callee->domain;
            access.from_file = project.relative(file.path);
            access.line = i + 1;
            access.from_module = from_module;
            access.enclosing = *enclosing[i];

            if (callee->domain == LaneDomain::Mailbox) {
                access.verdict =
                    surface.name == "StatRegistry"
                        ? LaneVerdict::StatCounter
                        : LaneVerdict::Mediated;
            } else if (callee->domain == LaneDomain::BarrierOnly) {
                // Barrier-lane residents only run while every
                // worker is quiesced; reaching them is mediated by
                // the barrier itself.
                access.verdict = LaneVerdict::Mediated;
            } else if (callee->domain == access.enclosing &&
                       (callee->domain != LaneDomain::PerInstance ||
                        surface.module == from_module)) {
                // Same domain. Per-instance components co-home only
                // within one DIMM's module group (a controller and
                // its timing model; a module and its engine), so a
                // per-instance match across modules still needs
                // mediation.
                access.verdict = LaneVerdict::SameLane;
            } else if (laneAnnotated(file, i, surface.name,
                                     member)) {
                access.verdict = LaneVerdict::Annotated;
            } else if (mediated[i]) {
                access.verdict = LaneVerdict::Mediated;
            } else if (mt->second.is_const) {
                access.verdict = LaneVerdict::Read;
            } else {
                access.verdict = LaneVerdict::Violation;
                findings.push_back(
                    {file.path, i + 1, "lane-violation",
                     "cross-lane access " + surface.name +
                         "::" + member + " (" +
                         laneDomainName(callee->domain) +
                         ") from " +
                         laneDomainName(access.enclosing) +
                         " code in module '" + from_module +
                         "'; route it through schedule()/"
                         "stageEgress() onto the owner lane, or "
                         "declare the co-homing with beacon-lint: "
                         "lane(" +
                         surface.name + "." + member + ")"});
            }
            map.accesses.push_back(std::move(access));
        }
    }
}

} // namespace

const char *
laneDomainName(LaneDomain domain)
{
    switch (domain) {
      case LaneDomain::Lane0:
        return "lane-0";
      case LaneDomain::PerInstance:
        return "per-instance-lane";
      case LaneDomain::BarrierOnly:
        return "barrier-only";
      case LaneDomain::Mailbox:
        return "mailbox";
    }
    return "unknown";
}

const char *
laneVerdictName(LaneVerdict verdict)
{
    switch (verdict) {
      case LaneVerdict::SameLane:
        return "same-lane";
      case LaneVerdict::Mediated:
        return "mediated";
      case LaneVerdict::StatCounter:
        return "stat-counter";
      case LaneVerdict::Read:
        return "read";
      case LaneVerdict::Annotated:
        return "annotated";
      case LaneVerdict::Violation:
        return "violation";
    }
    return "unknown";
}

LaneMap
runLaneMapPass(const Project &project, std::vector<Finding> &out)
{
    LaneMap map;

    const std::map<std::string, ClassSurface> surfaces =
        indexCoreSurfaces(project);
    for (const auto &[name, surface] : surfaces) {
        const LaneDomainSpec *spec = domainOf(name);
        if (!spec)
            continue;
        LaneAssignment assignment;
        assignment.class_name = name;
        assignment.module = surface.module;
        assignment.header = surface.header;
        assignment.domain = spec->domain;
        assignment.hint_source = spec->hint_source;
        map.assignments.push_back(std::move(assignment));
    }
    std::sort(map.assignments.begin(), map.assignments.end(),
              [](const LaneAssignment &a, const LaneAssignment &b) {
                  return a.class_name < b.class_name;
              });

    for (const std::string &path : project.files) {
        std::string error;
        const SourceFile *file = project.cache->get(path, error);
        if (!file)
            continue;
        walkFile(*file, project, surfaces, map, out);
    }
    std::sort(map.accesses.begin(), map.accesses.end(),
              [](const LaneAccess &a, const LaneAccess &b) {
                  if (a.from_file != b.from_file)
                      return a.from_file < b.from_file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.class_name != b.class_name)
                      return a.class_name < b.class_name;
                  return a.member < b.member;
              });
    return map;
}

} // namespace beacon_lint
