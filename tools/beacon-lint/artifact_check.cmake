# Regenerate one versioned beacon-lint artifact and require it to
# match the committed golden byte for byte. Run by the
# beacon_shardmap_golden / beacon_lanemap_golden ctests and by the
# beacon-lint CI job.
#
# Variables: LINT (tool binary), REPO_ROOT, FLAG (--shard-map or
# --lane-map), GOLDEN, OUT.

execute_process(
    COMMAND ${LINT} --repo-root ${REPO_ROOT} ${FLAG} ${OUT}
    RESULT_VARIABLE lint_result
    OUTPUT_VARIABLE lint_output
    ERROR_VARIABLE lint_output)
# Exit 1 means unsuppressed lint findings, which beacon_lint_repo
# owns; the artifact is still written. Only 2+ is a tool failure.
if(lint_result GREATER 1)
    message(FATAL_ERROR "beacon-lint failed (${lint_result}):\n${lint_output}")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${GOLDEN} ${OUT}
    RESULT_VARIABLE diff_result)
if(NOT diff_result EQUAL 0)
    execute_process(
        COMMAND diff -u ${GOLDEN} ${OUT}
        OUTPUT_VARIABLE diff_text
        ERROR_VARIABLE diff_text)
    # The hazard entries are what each map exists to catch: call new
    # ones out above the generic drift message so the fix is
    # unambiguous.
    set(hazard_note "")
    if(FLAG STREQUAL "--shard-map")
        # Cross-shard writes that bypass the event queue.
        string(REGEX MATCHALL "\\+[^\n]*\"category\": \"direct-mutation\""
               new_hazards "${diff_text}")
        if(new_hazards)
            list(LENGTH new_hazards num_hazards)
            set(hazard_note
                "${num_hazards} NEW direct-mutation entr(y/ies): these "
                "cross-shard writes bypass the event queue and are unsafe "
                "under parallel DES. Annotate deliberate ones with "
                "beacon-lint: shared-state(...) or reroute them through "
                "scheduled events before refreshing the golden.\n")
        endif()
    elseif(FLAG STREQUAL "--lane-map")
        # Unmediated cross-lane member accesses.
        string(REGEX MATCHALL "\\+[^\n]*\"verdict\": \"violation\""
               new_hazards "${diff_text}")
        if(new_hazards)
            list(LENGTH new_hazards num_hazards)
            set(hazard_note
                "${num_hazards} NEW lane-violation entr(y/ies): these "
                "member accesses cross a lane-domain boundary without "
                "going through schedule()/stageEgress(). Route them onto "
                "the owner lane, or declare audited co-homing with "
                "beacon-lint: lane(...) before refreshing the golden.\n")
        endif()
    endif()
    get_filename_component(golden_name ${GOLDEN} NAME)
    message(FATAL_ERROR
        "${golden_name} drifted from the committed golden.\n"
        "${hazard_note}"
        "If the change is intentional (and every new hazard entry is "
        "annotated or fixed), refresh it with:\n"
        "  beacon-lint --repo-root . ${FLAG} "
        "tools/beacon-lint/${golden_name}\n${diff_text}")
endif()
message(STATUS "artifact matches golden: ${GOLDEN}")
