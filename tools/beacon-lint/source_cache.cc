/**
 * @file
 * SourceCache implementation.
 */

#include "source_cache.hh"

#include <filesystem>

namespace beacon_lint
{

std::string
SourceCache::canonical(const std::string &path)
{
    return std::filesystem::absolute(std::filesystem::path(path))
        .lexically_normal()
        .string();
}

const SourceFile *
SourceCache::get(const std::string &path, std::string &error)
{
    const std::string key = canonical(path);
    auto it = slots.find(key);
    if (it == slots.end()) {
        Slot slot;
        slot.ok = loadSourceFile(key, slot.file, slot.error);
        ++lexed;
        it = slots.emplace(key, std::move(slot)).first;
    } else {
        ++hits;
    }
    if (!it->second.ok) {
        error = it->second.error;
        return nullptr;
    }
    return &it->second.file;
}

} // namespace beacon_lint
