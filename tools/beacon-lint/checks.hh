/**
 * @file
 * The beacon-lint check registry.
 *
 * Each check is a named pass over a SourceFile that appends Findings.
 * Checks are scoped to repository layers (a determinism bug in tests
 * is the test's business; raw new in src/ is not), and every finding
 * can be suppressed with a `// beacon-lint: allow(<check>)` comment
 * on the same line or the line above (or `allow-file(<check>)`
 * anywhere in the file).
 */

#ifndef BEACON_LINT_CHECKS_HH
#define BEACON_LINT_CHECKS_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "source_file.hh"

namespace beacon_lint
{

/** One lint diagnostic. */
struct Finding
{
    std::string path;
    std::size_t line = 0; // 1-based
    std::string check;
    std::string message;
};

/** Repository layer a file belongs to (scopes the checks). */
enum class Layer
{
    Src,      //!< simulator model code (src/)
    Bench,    //!< paper-figure harnesses (bench/)
    Examples, //!< example programs (examples/)
    Tests,    //!< unit tests (tests/)
    Other,    //!< tools/, docs/, fixtures, ...
};

/** Classify @p path (normalised, absolute or repo-relative). */
Layer layerOf(const std::string &path);

/** A registered check. */
struct Check
{
    std::string name;
    std::string description;
    /** Layers the check runs on in normal (non-self-test) mode. */
    std::vector<Layer> layers;
    /** Appends findings for @p file (annotations not yet applied). */
    std::function<void(const SourceFile &, std::vector<Finding> &)>
        run;

    bool
    appliesTo(Layer layer) const
    {
        for (Layer l : layers)
            if (l == layer)
                return true;
        return false;
    }
};

/** All built-in checks, in reporting order. */
const std::vector<Check> &allChecks();

/**
 * Run the selected checks over @p file and drop findings suppressed
 * by allow()/allow-file() annotations. @p respect_layers is false in
 * self-test mode, where every check runs on every fixture.
 *
 * @p enabled holds check names; empty means "all checks".
 */
std::vector<Finding>
lintFile(const SourceFile &file,
         const std::vector<std::string> &enabled,
         bool respect_layers);

/**
 * True when a finding of @p check on 1-based @p line is suppressed
 * by an allow()/allow-file() annotation. lintFile applies this
 * internally; the whole-program passes (analysis.hh) produce their
 * findings outside lintFile and filter through this directly.
 */
bool findingAllowed(const SourceFile &file, std::size_t line,
                    const std::string &check);

/**
 * Lines annotated `beacon-lint: expect(<check>)`, as (check, line)
 * pairs — the fixture contract the self-test asserts against.
 */
std::vector<std::pair<std::string, std::size_t>>
expectedFindings(const SourceFile &file);

} // namespace beacon_lint

#endif // BEACON_LINT_CHECKS_HH
