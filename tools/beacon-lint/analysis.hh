/**
 * @file
 * Whole-program analysis framework for beacon-lint.
 *
 * PR 4's beacon-lint was a per-TU lexical linter; the passes declared
 * here see the whole repository at once, driven by the same lexical
 * code view (no libclang — the CI leg still needs nothing beyond the
 * C++ toolchain):
 *
 *  1. the include/layer pass (include_graph.cc) extracts the project
 *     include graph and enforces the architecture DAG, failing on
 *     back-edges and include cycles;
 *  2. the shared-state inventory pass (shared_state.cc) indexes the
 *     mutable surface of the core component classes plus namespace-
 *     scope globals and function-local statics, and resolves which
 *     modules read or write each symbol;
 *  3. the shard-boundary report (shard_map.cc) renders the inventory
 *     as versioned `beacon-shardmap-1` JSON, the machine-checked
 *     artifact the parallel-DES sharding refactor starts from;
 *  4. the lane-ownership pass (lane_check.cc + lane_map.cc) assigns
 *     each core class a static lane domain — the same partition
 *     ShardedEventQueue derives from MemRequest::completion_hint
 *     home hints — and flags member accesses that cross domains
 *     without going through the schedule() mailbox API, StatRegistry
 *     counters, or a `beacon-lint: lane(...)` annotation; its
 *     `beacon-lanemap-1` JSON is the static twin of the runtime
 *     lane guard (BEACON_LANE_GUARD) in src/sim.
 *
 * All passes operate on a Project rooted at the repository (or
 * at a fixture tree under testdata/ in self-test mode), so the same
 * logic is exercised by the self-test and by the repo gate.
 */

#ifndef BEACON_LINT_ANALYSIS_HH
#define BEACON_LINT_ANALYSIS_HH

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "checks.hh"
#include "source_cache.hh"

namespace beacon_lint
{

/**
 * One analysed source tree: the repository root plus every lintable
 * file found under `<root>/src`, lexed through the shared cache.
 */
struct Project
{
    /** Normalised absolute repository root. */
    std::string root;
    /** Sorted absolute paths of every lintable file under src/. */
    std::vector<std::string> files;
    /** Lexer cache shared with the per-file checks. */
    SourceCache *cache = nullptr;

    /** @p path relative to root, '/'-separated (stable across
     *  machines — used for every report and finding). */
    std::string relative(const std::string &path) const;

    /**
     * The src/ module a path belongs to ("sim", "dram", ...), or ""
     * for anything outside `src/` (bench, tests, tools, system
     * headers) — those are outside the architecture DAG.
     */
    std::string moduleOf(const std::string &path) const;
};

/**
 * Build a Project rooted at @p root: finds and lexes every source
 * file under `<root>/src`. Returns false and sets @p error when the
 * tree cannot be read.
 */
bool buildProject(const std::string &root, SourceCache &cache,
                  Project &out, std::string &error);

// --- architecture DAG -----------------------------------------------

/**
 * The layering contract of src/ (docs/static_analysis.md):
 *
 *     common -> sim -> {dram, cxl} -> ndp -> {accel, memmgmt}
 *                                              -> service
 *
 * with genomics/graph as pure workload libraries over common, and
 * obs/check as leaf-only taps: any module may include them, but they
 * may depend only on the kernels they observe (common/sim, plus
 * dram's command vocabulary for the protocol checker).
 *
 * Returns the allowed dependency set of @p module (not including the
 * module itself, which is always allowed), or nullptr for a module
 * that is not part of the contract.
 */
const std::set<std::string> *allowedDeps(const std::string &module);

/** True for the tap modules any src/ module may include. */
bool isTapModule(const std::string &module);

/** One project-internal include edge. */
struct IncludeEdge
{
    std::string from;      //!< absolute path of the including file
    std::size_t line = 0;  //!< 1-based #include line
    std::string to;        //!< absolute path of the included file
};

/**
 * Resolve every `#include "..."` in @p project to files that exist
 * under the tree (quoted includes resolve against `<root>/src`, then
 * against the including file's directory). System and third-party
 * includes are ignored.
 */
std::vector<IncludeEdge> includeEdges(const Project &project);

/**
 * The include/layer pass: appends `layer-back-edge` findings for
 * include edges that violate the DAG and `include-cycle` findings
 * for file-level include cycles.
 */
void runIncludeGraphPass(const Project &project,
                         std::vector<Finding> &out);

// --- shared-state inventory -----------------------------------------

/** A method of a core component class. */
struct MethodInfo
{
    std::string name;
    bool is_const = false;
};

/** The indexed surface of one core component class. */
struct ClassSurface
{
    std::string name;          //!< e.g. "EventQueue"
    std::string module;        //!< owning src/ module
    std::string header;        //!< repo-relative header path
    std::map<std::string, MethodInfo> methods;
    /** Non-static, non-const data members. */
    std::vector<std::string> mutable_fields;
    /** const / static constexpr data members. */
    std::vector<std::string> immutable_fields;
};

/** A namespace-scope variable or function-local static in src/. */
struct GlobalState
{
    std::string name;
    std::string file;      //!< repo-relative
    std::size_t line = 0;  //!< 1-based
    std::string module;
    /** "global" or "static-local". */
    std::string kind;
    /** Declared std::atomic<...> (safe to share, still listed). */
    bool atomic = false;
};

/** How a cross-component access is mediated. */
enum class AccessCategory
{
    EventQueueMediated, //!< through the EventQueue scheduling API
    StatCounter,        //!< StatRegistry counters (mergeable)
    Read,               //!< const method on a foreign component
    DirectMutation,     //!< mutating call across a shard boundary
};

const char *accessCategoryName(AccessCategory cat);

/** One resolved cross-component access with provenance. */
struct AccessRecord
{
    std::string class_name;
    std::string member;
    std::string owner_module;
    std::string from_file; //!< repo-relative
    std::size_t line = 0;  //!< 1-based
    std::string from_module;
    AccessCategory category = AccessCategory::Read;
    /** Declared via a `beacon-lint: shared-state(...)` annotation. */
    bool annotated = false;
};

/** The full shared-state inventory of a Project. */
struct ShardMap
{
    std::vector<ClassSurface> classes;
    std::vector<GlobalState> globals;
    std::vector<AccessRecord> accesses;
};

/**
 * The shared-state inventory pass: index the core classes and the
 * global/static mutable state, resolve cross-component accesses, and
 * append `shared-state-mutation` findings for every unannotated
 * direct mutation across a component boundary.
 */
ShardMap runSharedStatePass(const Project &project,
                            std::vector<Finding> &out);

/** Render @p map as deterministic `beacon-shardmap-1` JSON. */
std::string shardMapJson(const Project &project,
                         const ShardMap &map);

// --- shared core-class machinery (shared_state.cc) ------------------

/** One core component class the whole-program passes index. */
struct CoreClassSpec
{
    const char *name;
    const char *module;
    const char *header; //!< repo-relative
};

/** The core component class table. */
const std::vector<CoreClassSpec> &coreClasses();

/**
 * Index every core class surface whose header exists in the project
 * (fixture trees carry a subset), keyed by class name.
 */
std::map<std::string, ClassSurface>
indexCoreSurfaces(const Project &project);

/**
 * Bind receiver variables of @p file to core class surfaces:
 * one-line declarations, unique_ptr/shared_ptr spellings, accessor
 * results, and the SimObject convention names `eq` / `stats`.
 */
std::map<std::string, const ClassSurface *>
bindCoreVariables(const SourceFile &file,
                  const std::map<std::string, ClassSurface> &surfaces);

// --- lane-ownership analysis ----------------------------------------

/**
 * Static lane domain of a core component class — which worker lane
 * of the sharded queue may touch its state inside a parallel window
 * (docs/simulation_model.md, "Sharded execution").
 */
enum class LaneDomain
{
    /** Default-lane resident: fabric, orchestrator, host state. */
    Lane0,
    /** One lane per instance, keyed by the home hint the builder
     *  assigns (1 + dimm index for CXLG components). */
    PerInstance,
    /** Barrier lane: runs only while every worker is quiesced. */
    BarrierOnly,
    /** A lane-crossing channel by design (the queue itself and the
     *  registry's counter discipline); accesses are always safe. */
    Mailbox,
};

const char *laneDomainName(LaneDomain domain);

/** One class's entry in the lane map. */
struct LaneAssignment
{
    std::string class_name;
    std::string module;
    std::string header; //!< repo-relative
    LaneDomain domain = LaneDomain::Lane0;
    /** Where instances derive their home hints from. */
    std::string hint_source;
};

/** How one observed member access relates to the lane partition. */
enum class LaneVerdict
{
    SameLane,    //!< caller and callee share a lane by construction
    Mediated,    //!< inside a schedule()/stageEgress() call region
    StatCounter, //!< StatRegistry (single-writer counter discipline)
    Read,        //!< const accessor (runtime guard owns this risk)
    Annotated,   //!< declared with `beacon-lint: lane(...)`
    Violation,   //!< unmediated cross-lane member access
};

const char *laneVerdictName(LaneVerdict verdict);

/** One member access observed against the lane partition. */
struct LaneAccess
{
    std::string class_name; //!< callee class
    std::string member;
    LaneDomain domain = LaneDomain::Lane0; //!< callee domain
    std::string from_file;                 //!< repo-relative
    std::size_t line = 0;                  //!< 1-based
    std::string from_module;
    LaneDomain enclosing = LaneDomain::Lane0; //!< caller domain
    LaneVerdict verdict = LaneVerdict::SameLane;
};

/** The full lane-ownership map of a Project. */
struct LaneMap
{
    std::vector<LaneAssignment> assignments;
    std::vector<LaneAccess> accesses;
};

/**
 * The lane-ownership pass: assign domains, walk the code of every
 * module with lane semantics, and append `lane-violation` findings
 * for unmediated cross-domain accesses.
 */
LaneMap runLaneMapPass(const Project &project,
                       std::vector<Finding> &out);

/** Render @p map as deterministic `beacon-lanemap-1` JSON. */
std::string laneMapJson(const Project &project, const LaneMap &map);

} // namespace beacon_lint

#endif // BEACON_LINT_ANALYSIS_HH
