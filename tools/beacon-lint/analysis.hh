/**
 * @file
 * Whole-program analysis framework for beacon-lint.
 *
 * PR 4's beacon-lint was a per-TU lexical linter; the passes declared
 * here see the whole repository at once, driven by the same lexical
 * code view (no libclang — the CI leg still needs nothing beyond the
 * C++ toolchain):
 *
 *  1. the include/layer pass (include_graph.cc) extracts the project
 *     include graph and enforces the architecture DAG, failing on
 *     back-edges and include cycles;
 *  2. the shared-state inventory pass (shared_state.cc) indexes the
 *     mutable surface of the core component classes plus namespace-
 *     scope globals and function-local statics, and resolves which
 *     modules read or write each symbol;
 *  3. the shard-boundary report (shard_map.cc) renders the inventory
 *     as versioned `beacon-shardmap-1` JSON, the machine-checked
 *     artifact the parallel-DES sharding refactor starts from.
 *
 * All three passes operate on a Project rooted at the repository (or
 * at a fixture tree under testdata/ in self-test mode), so the same
 * logic is exercised by the self-test and by the repo gate.
 */

#ifndef BEACON_LINT_ANALYSIS_HH
#define BEACON_LINT_ANALYSIS_HH

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "checks.hh"
#include "source_cache.hh"

namespace beacon_lint
{

/**
 * One analysed source tree: the repository root plus every lintable
 * file found under `<root>/src`, lexed through the shared cache.
 */
struct Project
{
    /** Normalised absolute repository root. */
    std::string root;
    /** Sorted absolute paths of every lintable file under src/. */
    std::vector<std::string> files;
    /** Lexer cache shared with the per-file checks. */
    SourceCache *cache = nullptr;

    /** @p path relative to root, '/'-separated (stable across
     *  machines — used for every report and finding). */
    std::string relative(const std::string &path) const;

    /**
     * The src/ module a path belongs to ("sim", "dram", ...), or ""
     * for anything outside `src/` (bench, tests, tools, system
     * headers) — those are outside the architecture DAG.
     */
    std::string moduleOf(const std::string &path) const;
};

/**
 * Build a Project rooted at @p root: finds and lexes every source
 * file under `<root>/src`. Returns false and sets @p error when the
 * tree cannot be read.
 */
bool buildProject(const std::string &root, SourceCache &cache,
                  Project &out, std::string &error);

// --- architecture DAG -----------------------------------------------

/**
 * The layering contract of src/ (docs/static_analysis.md):
 *
 *     common -> sim -> {dram, cxl} -> ndp -> {accel, memmgmt}
 *                                              -> service
 *
 * with genomics/graph as pure workload libraries over common, and
 * obs/check as leaf-only taps: any module may include them, but they
 * may depend only on the kernels they observe (common/sim, plus
 * dram's command vocabulary for the protocol checker).
 *
 * Returns the allowed dependency set of @p module (not including the
 * module itself, which is always allowed), or nullptr for a module
 * that is not part of the contract.
 */
const std::set<std::string> *allowedDeps(const std::string &module);

/** True for the tap modules any src/ module may include. */
bool isTapModule(const std::string &module);

/** One project-internal include edge. */
struct IncludeEdge
{
    std::string from;      //!< absolute path of the including file
    std::size_t line = 0;  //!< 1-based #include line
    std::string to;        //!< absolute path of the included file
};

/**
 * Resolve every `#include "..."` in @p project to files that exist
 * under the tree (quoted includes resolve against `<root>/src`, then
 * against the including file's directory). System and third-party
 * includes are ignored.
 */
std::vector<IncludeEdge> includeEdges(const Project &project);

/**
 * The include/layer pass: appends `layer-back-edge` findings for
 * include edges that violate the DAG and `include-cycle` findings
 * for file-level include cycles.
 */
void runIncludeGraphPass(const Project &project,
                         std::vector<Finding> &out);

// --- shared-state inventory -----------------------------------------

/** A method of a core component class. */
struct MethodInfo
{
    std::string name;
    bool is_const = false;
};

/** The indexed surface of one core component class. */
struct ClassSurface
{
    std::string name;          //!< e.g. "EventQueue"
    std::string module;        //!< owning src/ module
    std::string header;        //!< repo-relative header path
    std::map<std::string, MethodInfo> methods;
    /** Non-static, non-const data members. */
    std::vector<std::string> mutable_fields;
    /** const / static constexpr data members. */
    std::vector<std::string> immutable_fields;
};

/** A namespace-scope variable or function-local static in src/. */
struct GlobalState
{
    std::string name;
    std::string file;      //!< repo-relative
    std::size_t line = 0;  //!< 1-based
    std::string module;
    /** "global" or "static-local". */
    std::string kind;
    /** Declared std::atomic<...> (safe to share, still listed). */
    bool atomic = false;
};

/** How a cross-component access is mediated. */
enum class AccessCategory
{
    EventQueueMediated, //!< through the EventQueue scheduling API
    StatCounter,        //!< StatRegistry counters (mergeable)
    Read,               //!< const method on a foreign component
    DirectMutation,     //!< mutating call across a shard boundary
};

const char *accessCategoryName(AccessCategory cat);

/** One resolved cross-component access with provenance. */
struct AccessRecord
{
    std::string class_name;
    std::string member;
    std::string owner_module;
    std::string from_file; //!< repo-relative
    std::size_t line = 0;  //!< 1-based
    std::string from_module;
    AccessCategory category = AccessCategory::Read;
    /** Declared via a `beacon-lint: shared-state(...)` annotation. */
    bool annotated = false;
};

/** The full shared-state inventory of a Project. */
struct ShardMap
{
    std::vector<ClassSurface> classes;
    std::vector<GlobalState> globals;
    std::vector<AccessRecord> accesses;
};

/**
 * The shared-state inventory pass: index the core classes and the
 * global/static mutable state, resolve cross-component accesses, and
 * append `shared-state-mutation` findings for every unannotated
 * direct mutation across a component boundary.
 */
ShardMap runSharedStatePass(const Project &project,
                            std::vector<Finding> &out);

/** Render @p map as deterministic `beacon-shardmap-1` JSON. */
std::string shardMapJson(const Project &project,
                         const ShardMap &map);

} // namespace beacon_lint

#endif // BEACON_LINT_ANALYSIS_HH
