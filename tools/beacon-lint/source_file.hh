/**
 * @file
 * Lexical view of a C++ translation unit for beacon-lint.
 *
 * beacon-lint is deliberately a self-contained lexical analyser: the
 * CI container builds it with nothing beyond the C++ toolchain, so
 * checks work on a comment/string-stripped "code view" of each line
 * plus the comment text (which carries the control annotations).
 * The checks in checks.cc document the approximations this implies.
 */

#ifndef BEACON_LINT_SOURCE_FILE_HH
#define BEACON_LINT_SOURCE_FILE_HH

#include <string>
#include <vector>

namespace beacon_lint
{

/** One scanned file: raw text, code view, and per-line comments. */
struct SourceFile
{
    std::string path;
    /** Raw lines, 0-indexed (line N of the file is raw[N-1]). */
    std::vector<std::string> raw;
    /**
     * Code view: comments and string/character-literal contents are
     * replaced with spaces, so checks can pattern-match without
     * tripping over prose or quoted text. Delimiters are blanked
     * too; line count always equals raw.size().
     */
    std::vector<std::string> code;
    /** Comment text attributed to each line (annotations live here). */
    std::vector<std::string> comments;

    /** Number of lines. */
    std::size_t lines() const { return raw.size(); }
};

/**
 * Load @p path and build the stripped views. Returns false (and sets
 * @p error) if the file cannot be read.
 */
bool loadSourceFile(const std::string &path, SourceFile &out,
                    std::string &error);

/** Build a SourceFile from in-memory text (unit tests, self-test). */
SourceFile scanSource(const std::string &path,
                      const std::string &text);

} // namespace beacon_lint

#endif // BEACON_LINT_SOURCE_FILE_HH
