/**
 * @file
 * The shared-state inventory pass.
 *
 * Three lexical sub-passes over the Project:
 *
 *  1. **Class surface indexing** — parse the core component class
 *     bodies (EventQueue, StatRegistry, DimmTimingModel,
 *     DramController, PoolFabric, NdpModule, PoolOrchestrator) out
 *     of their headers: method names with const-ness, data members
 *     with mutability.
 *  2. **Global inventory** — namespace-scope variable definitions
 *     and function-local statics anywhere under src/, with a scope
 *     tracker over the brace structure of the code view.
 *  3. **Access resolution** — per TU, bind variables declared with a
 *     core class type (plus the SimObject convention names `eq` /
 *     `stats`) and resolve `var.method(...)` / `var->method(...)`
 *     calls against the indexed surfaces. A call from a different
 *     module than the class's owner is a cross-component access,
 *     classified event-queue-mediated / stat-counter / read /
 *     direct-mutation.
 *
 * Like every beacon-lint check this is an honest heuristic, not an
 * AST: single-statement declarations, brace-balanced scanning, and
 * convention-based receiver binding. The point is not soundness —
 * it is that the shard map is *reproducible*, so CI can fail when a
 * PR silently widens the shared surface.
 */

#include "analysis.hh"

#include <algorithm>
#include <cctype>
#include <regex>

namespace beacon_lint
{

namespace
{

// --- small lexical helpers ------------------------------------------

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Identifiers of @p text outside template angle brackets. */
std::vector<std::string>
topLevelIdents(const std::string &text)
{
    std::vector<std::string> idents;
    int angle = 0;
    for (std::size_t i = 0; i < text.size();) {
        const char c = text[i];
        if (c == '<' && i > 0 &&
            (identChar(text[i - 1]) || text[i - 1] == '>')) {
            ++angle;
            ++i;
        } else if (c == '>' && angle > 0) {
            --angle;
            ++i;
        } else if (identChar(c) && !std::isdigit(
                       static_cast<unsigned char>(c))) {
            std::size_t j = i;
            while (j < text.size() && identChar(text[j]))
                ++j;
            if (angle == 0)
                idents.push_back(text.substr(i, j - i));
            i = j;
        } else {
            ++i;
        }
    }
    return idents;
}

/** Position of the first '(' outside angle brackets, or npos. */
std::size_t
topLevelParen(const std::string &text)
{
    int angle = 0;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (c == '<' && i > 0 &&
            (identChar(text[i - 1]) || text[i - 1] == '>'))
            ++angle;
        else if (c == '>' && angle > 0)
            --angle;
        else if (c == '(' && angle == 0)
            return i;
    }
    return std::string::npos;
}

bool
containsWord(const std::string &text, const std::string &word)
{
    std::size_t pos = 0;
    while ((pos = text.find(word, pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !identChar(text[pos - 1]);
        const std::size_t end = pos + word.size();
        const bool right_ok =
            end >= text.size() || !identChar(text[end]);
        if (left_ok && right_ok)
            return true;
        pos = end;
    }
    return false;
}

std::string
stripAccessLabels(std::string text)
{
    static const std::regex label_re(
        "\\b(public|private|protected)\\s*:");
    return std::regex_replace(text, label_re, " ");
}

std::string
trim(const std::string &text)
{
    std::size_t b = text.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    std::size_t e = text.find_last_not_of(" \t");
    return text.substr(b, e - b + 1);
}

// --- statement scanning ---------------------------------------------

/** Kind of scope a '{' opens. */
enum class ScopeKind
{
    Namespace,
    Class,
    Function,
    Init, //!< braced initializer: the statement continues after it
};

/** One ';'- or '{'-terminated statement with its start line. */
struct Statement
{
    std::string text;
    std::size_t line0 = 0; //!< 0-based first line
    char terminator = ';';
    ScopeKind opened = ScopeKind::Init; //!< valid when terminator=='{'
    /** Scope kinds enclosing the statement (innermost last). */
    std::vector<ScopeKind> scopes;
};

ScopeKind
classifyBrace(const std::string &statement)
{
    const std::string text = trim(statement);
    if (containsWord(text, "namespace"))
        return ScopeKind::Namespace;
    if ((containsWord(text, "class") ||
         containsWord(text, "struct") ||
         containsWord(text, "union") ||
         containsWord(text, "enum")) &&
        topLevelParen(text) == std::string::npos)
        return ScopeKind::Class;
    if (text.empty())
        return ScopeKind::Function; // bare block
    const char last = text.back();
    if (last == ')' || last == ']')
        return ScopeKind::Function;
    static const std::regex fn_tail_re(
        "\\)\\s*(const|override|final|noexcept(\\s*\\([^)]*\\))?|"
        "->\\s*[\\w:<>&*\\s]+|\\s)*$");
    if (std::regex_search(text, fn_tail_re))
        return ScopeKind::Function;
    if (containsWord(text, "try") || containsWord(text, "do") ||
        containsWord(text, "else") || containsWord(text, "catch"))
        return ScopeKind::Function;
    return ScopeKind::Init;
}

/**
 * Walk the code view of @p file and hand every scope-level statement
 * to @p sink. Statements inside Init scopes are folded into their
 * surrounding statement; bodies of Function/Class scopes are still
 * visited (with the enclosing kinds recorded), so the caller can
 * select namespace-scope declarations or function-local statics.
 */
template <typename Sink>
void
scanStatements(const SourceFile &file, Sink &&sink)
{
    struct Scope
    {
        ScopeKind kind;
        std::string pending; //!< buffer saved across an Init scope
        std::size_t pending_line0 = 0;
    };
    std::vector<Scope> stack;
    std::string buffer;
    std::size_t start_line0 = 0;
    bool in_statement = false;

    auto scopeKinds = [&stack] {
        std::vector<ScopeKind> kinds;
        kinds.reserve(stack.size());
        for (const Scope &scope : stack)
            kinds.push_back(scope.kind);
        return kinds;
    };
    auto inInit = [&stack] {
        return !stack.empty() &&
               stack.back().kind == ScopeKind::Init;
    };

    for (std::size_t li = 0; li < file.lines(); ++li) {
        const std::string &code = file.code[li];
        for (std::size_t i = 0; i < code.size(); ++i) {
            const char c = code[i];
            if (c == '{') {
                Statement head;
                head.text = stripAccessLabels(buffer);
                head.line0 = start_line0;
                head.terminator = '{';
                head.opened = classifyBrace(head.text);
                head.scopes = scopeKinds();
                Scope scope;
                scope.kind = head.opened;
                if (scope.kind == ScopeKind::Init) {
                    // Keep the declaration text alive across the
                    // initializer so `Type name{init};` completes
                    // at the following ';'.
                    scope.pending = buffer;
                    scope.pending_line0 = start_line0;
                } else {
                    sink(head);
                }
                stack.push_back(std::move(scope));
                buffer.clear();
                in_statement = false;
            } else if (c == '}') {
                std::string restored;
                std::size_t restored_line0 = 0;
                if (!stack.empty()) {
                    if (stack.back().kind == ScopeKind::Init) {
                        restored = stack.back().pending;
                        restored_line0 = stack.back().pending_line0;
                    }
                    stack.pop_back();
                }
                buffer = restored;
                in_statement = !restored.empty();
                start_line0 = restored_line0;
            } else if (c == ';') {
                if (in_statement) {
                    Statement stmt;
                    stmt.text = stripAccessLabels(buffer);
                    stmt.line0 = start_line0;
                    stmt.terminator = ';';
                    stmt.scopes = scopeKinds();
                    sink(stmt);
                }
                buffer.clear();
                in_statement = false;
            } else {
                if (!in_statement &&
                    !std::isspace(static_cast<unsigned char>(c))) {
                    in_statement = true;
                    start_line0 = li;
                }
                if (in_statement && !inInit())
                    buffer += c;
            }
        }
        if (in_statement)
            buffer += ' ';
    }
}

// --- class surface parsing ------------------------------------------

const char *const decl_keywords[] = {
    "using", "friend", "typedef", "template", "static_assert",
};

bool
skippableMemberStatement(const std::string &text)
{
    for (const char *kw : decl_keywords)
        if (containsWord(text, kw))
            return true;
    return false;
}

/** Method name of a signature-shaped statement, or "". */
std::string
methodName(const std::string &text, std::size_t paren)
{
    std::size_t e = paren;
    while (e > 0 && std::isspace(
               static_cast<unsigned char>(text[e - 1])))
        --e;
    std::size_t b = e;
    while (b > 0 && identChar(text[b - 1]))
        --b;
    if (b == e)
        return "";
    std::string name = text.substr(b, e - b);
    // `operator+=` and friends: keep the keyword as a marker so the
    // caller can skip them uniformly.
    if (b >= 8 && text.compare(b - 8, 8, "operator") == 0)
        return "operator";
    return name;
}

bool
constAfterLastParen(const std::string &text)
{
    const std::size_t close = text.rfind(')');
    if (close == std::string::npos)
        return false;
    return containsWord(text.substr(close + 1), "const");
}

/**
 * Parse the body of class @p spec.name out of @p file into
 * @p surface. Returns false when the class definition is absent.
 */
bool
parseClassSurface(const SourceFile &file, const CoreClassSpec &spec,
                  const Project &project, ClassSurface &surface)
{
    surface.name = spec.name;
    surface.module = spec.module;
    surface.header = project.relative(file.path);

    bool found = false;
    bool done = false;
    std::size_t body_depth = 0;
    scanStatements(file, [&](const Statement &stmt) {
        if (done)
            return;
        if (!found) {
            if (stmt.terminator == '{' &&
                stmt.opened == ScopeKind::Class &&
                containsWord(stmt.text, spec.name)) {
                found = true;
                body_depth = stmt.scopes.size() + 1;
            }
            return;
        }
        // A statement at or above the class-head depth means the
        // class body has closed; later classes in the same header
        // must not contribute members.
        if (stmt.scopes.size() < body_depth) {
            done = true;
            return;
        }
        // Direct members sit exactly at the class-body depth
        // (nested structs and inline method bodies are deeper).
        const bool direct =
            stmt.scopes.size() == body_depth &&
            stmt.scopes.back() == ScopeKind::Class;
        if (!direct)
            return;
        const std::string text = trim(stmt.text);
        if (text.empty() || skippableMemberStatement(text))
            return;
        if (stmt.terminator == '{' &&
            stmt.opened != ScopeKind::Function)
            return; // nested type definition
        const std::size_t paren = topLevelParen(text);
        if (paren != std::string::npos) {
            const std::string name = methodName(text, paren);
            if (name.empty() || name == "operator" ||
                name == spec.name)
                return; // operator or constructor
            MethodInfo info;
            info.name = name;
            info.is_const = constAfterLastParen(text);
            surface.methods[name] = info;
        } else if (stmt.terminator == ';') {
            const std::vector<std::string> idents =
                topLevelIdents(text);
            if (idents.empty())
                return;
            // `Type name = init;` — the name is the identifier
            // preceding '=', else the last one.
            std::string name;
            const std::size_t eq = text.find('=');
            if (eq == std::string::npos) {
                name = idents.back();
            } else {
                const std::vector<std::string> lhs =
                    topLevelIdents(text.substr(0, eq));
                if (lhs.empty())
                    return;
                name = lhs.back();
            }
            const bool immutable =
                containsWord(text, "constexpr") ||
                containsWord(text, "const");
            (immutable ? surface.immutable_fields
                       : surface.mutable_fields)
                .push_back(name);
        }
    });
    std::sort(surface.mutable_fields.begin(),
              surface.mutable_fields.end());
    std::sort(surface.immutable_fields.begin(),
              surface.immutable_fields.end());
    return found;
}

// --- global inventory -----------------------------------------------

bool
looksLikeVariable(const std::string &text)
{
    if (topLevelParen(text) != std::string::npos)
        return false; // function declaration or call
    static const char *const reject[] = {
        "using",    "typedef",  "extern",   "return",
        "template", "namespace", "class",   "struct",
        "enum",     "union",    "friend",   "operator",
        "static_assert", "goto", "throw",
    };
    for (const char *kw : reject)
        if (containsWord(text, kw))
            return false;
    return topLevelIdents(text).size() >= 2; // type + name minimum
}

std::string
variableName(const std::string &text)
{
    const std::size_t eq = text.find('=');
    const std::string head =
        eq == std::string::npos ? text : text.substr(0, eq);
    const std::vector<std::string> idents = topLevelIdents(head);
    return idents.empty() ? "" : idents.back();
}

void
collectGlobals(const SourceFile &file, const Project &project,
               std::vector<GlobalState> &out)
{
    const std::string module = project.moduleOf(file.path);
    scanStatements(file, [&](const Statement &stmt) {
        if (stmt.terminator != ';')
            return;
        const std::string text = trim(stmt.text);
        if (text.empty())
            return;
        const bool immutable = containsWord(text, "constexpr") ||
                               containsWord(text, "const");
        if (immutable)
            return;
        const bool namespace_scope = std::all_of(
            stmt.scopes.begin(), stmt.scopes.end(),
            [](ScopeKind k) { return k == ScopeKind::Namespace; });
        const bool function_scope =
            std::any_of(stmt.scopes.begin(), stmt.scopes.end(),
                        [](ScopeKind k) {
                            return k == ScopeKind::Function;
                        });
        GlobalState state;
        if (namespace_scope && looksLikeVariable(text)) {
            state.kind = "global";
        } else if (function_scope &&
                   text.rfind("static ", 0) == 0 &&
                   looksLikeVariable(text)) {
            state.kind = "static-local";
        } else {
            return;
        }
        state.name = variableName(text);
        if (state.name.empty())
            return;
        state.file = project.relative(file.path);
        state.line = stmt.line0 + 1;
        state.module = module;
        state.atomic = containsWord(text, "atomic");
        out.push_back(std::move(state));
    });
}

// --- access resolution ----------------------------------------------

/** `beacon-lint: shared-state(Class.member[, category])` markers. */
struct SharedStateMarker
{
    std::string class_name;
    std::string member;
    std::string category; //!< optional override
};

std::vector<SharedStateMarker>
sharedStateMarkers(const std::string &comment)
{
    static const std::regex marker_re(
        "beacon-lint:\\s*shared-state\\s*\\(([^)]*)\\)");
    std::vector<SharedStateMarker> markers;
    auto begin = std::sregex_iterator(comment.begin(),
                                      comment.end(), marker_re);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
        const std::string args = (*it)[1].str();
        static const std::regex parts_re(
            "([\\w]+)\\.([\\w]+)\\s*(?:,\\s*([\\w-]+))?");
        std::smatch m;
        if (!std::regex_search(args, m, parts_re))
            continue;
        markers.push_back({m[1].str(), m[2].str(), m[3].str()});
    }
    return markers;
}

const SharedStateMarker *
markerFor(const std::vector<SharedStateMarker> &markers,
          const std::string &class_name, const std::string &member)
{
    for (const SharedStateMarker &marker : markers)
        if (marker.class_name == class_name &&
            marker.member == member)
            return &marker;
    return nullptr;
}

} // namespace

// The core component class table, shared by the shard-map and lane
// passes. AtomicEngine and Sampler joined with the lane pass: the
// engine co-homes with its partition's DIMM lane, and the sampler is
// the one barrier-lane resident.
const std::vector<CoreClassSpec> &
coreClasses()
{
    static const std::vector<CoreClassSpec> classes = {
        {"EventQueue", "sim", "src/sim/event_queue.hh"},
        {"StatRegistry", "sim", "src/sim/stats.hh"},
        {"DimmTimingModel", "dram", "src/dram/dimm_timing.hh"},
        {"DramController", "dram", "src/dram/controller.hh"},
        {"PoolFabric", "cxl", "src/cxl/pool.hh"},
        {"NdpModule", "ndp", "src/ndp/ndp_module.hh"},
        {"AtomicEngine", "ndp", "src/ndp/atomic_engine.hh"},
        {"Sampler", "obs", "src/obs/sampler.hh"},
        {"PoolOrchestrator", "service",
         "src/service/orchestrator.hh"},
    };
    return classes;
}

std::map<std::string, ClassSurface>
indexCoreSurfaces(const Project &project)
{
    std::map<std::string, ClassSurface> surfaces;
    for (const CoreClassSpec &spec : coreClasses()) {
        const std::string header = SourceCache::canonical(
            project.root + "/" + spec.header);
        std::string error;
        const SourceFile *file = project.cache->get(header, error);
        if (!file)
            continue; // fixture projects carry a subset
        ClassSurface surface;
        if (parseClassSurface(*file, spec, project, surface))
            surfaces[spec.name] = std::move(surface);
    }
    return surfaces;
}

/** Bind variables of @p file to core class surfaces. */
std::map<std::string, const ClassSurface *>
bindCoreVariables(const SourceFile &file,
                  const std::map<std::string, ClassSurface> &surfaces)
{
    std::map<std::string, const ClassSurface *> vars;

    // The SimObject convention: every component names its queue and
    // registry references `eq` and `stats` (sim/sim_object.hh), so
    // inherited-member accesses bind without a local declaration.
    if (auto it = surfaces.find("EventQueue"); it != surfaces.end())
        vars["eq"] = &it->second;
    if (auto it = surfaces.find("StatRegistry");
        it != surfaces.end())
        vars["stats"] = &it->second;

    std::string class_alt;
    for (const auto &[name, surface] : surfaces) {
        if (!class_alt.empty())
            class_alt += '|';
        class_alt += name;
    }
    if (class_alt.empty())
        return vars;

    // `ClassName &var`, `ClassName *var`, `ClassName var(...)`.
    const std::regex decl_re("\\b(" + class_alt +
                             ")\\s*[&*]?\\s*(\\w+)\\s*[;,)=({]");
    // `unique_ptr<ClassName> var` and the shared_ptr spelling.
    const std::regex ptr_re("\\b(?:unique_ptr|shared_ptr)\\s*<\\s*(" +
                            class_alt + ")\\s*>\\s*&?\\s*(\\w+)");
    // Accessor binding: `auto &q = system.eventQueue();`.
    static const std::regex accessor_re(
        "[&\\s](\\w+)\\s*=\\s*[\\w.\\->]*\\b"
        "(eventQueue|statsMutable)\\s*\\(\\)");

    for (const std::string &code : file.code) {
        for (auto it = std::sregex_iterator(code.begin(),
                                            code.end(), decl_re);
             it != std::sregex_iterator(); ++it)
            vars[(*it)[2].str()] =
                &surfaces.at((*it)[1].str());
        for (auto it = std::sregex_iterator(code.begin(),
                                            code.end(), ptr_re);
             it != std::sregex_iterator(); ++it)
            vars[(*it)[2].str()] =
                &surfaces.at((*it)[1].str());
        for (auto it = std::sregex_iterator(
                 code.begin(), code.end(), accessor_re);
             it != std::sregex_iterator(); ++it) {
            const std::string target = (*it)[2].str() ==
                                               "eventQueue"
                                           ? "EventQueue"
                                           : "StatRegistry";
            if (auto st = surfaces.find(target);
                st != surfaces.end())
                vars[(*it)[1].str()] = &st->second;
        }
    }
    return vars;
}

namespace
{

AccessCategory
classifyAccess(const ClassSurface &surface, const MethodInfo &method)
{
    // All traffic through the queue API is, by definition, mediated
    // by the event queue — that is the safe sharding channel. The
    // registry's whole surface is mergeable counters.
    if (surface.name == "EventQueue")
        return AccessCategory::EventQueueMediated;
    if (surface.name == "StatRegistry")
        return AccessCategory::StatCounter;
    return method.is_const ? AccessCategory::Read
                           : AccessCategory::DirectMutation;
}

void
resolveAccesses(const SourceFile &file, const Project &project,
                const std::map<std::string, ClassSurface> &surfaces,
                std::vector<AccessRecord> &records,
                std::vector<Finding> &findings)
{
    const std::string from_module = project.moduleOf(file.path);
    if (from_module.empty())
        return;
    const std::map<std::string, const ClassSurface *> vars =
        bindCoreVariables(file, surfaces);
    if (vars.empty())
        return;

    static const std::regex access_re(
        "(\\w+)\\s*(?:\\.|->)\\s*(\\w+)\\s*\\(");
    for (std::size_t i = 0; i < file.lines(); ++i) {
        const std::string &code = file.code[i];
        for (auto it = std::sregex_iterator(code.begin(),
                                            code.end(), access_re);
             it != std::sregex_iterator(); ++it) {
            const std::string var = (*it)[1].str();
            const std::string member = (*it)[2].str();
            auto vt = vars.find(var);
            if (vt == vars.end())
                continue;
            const ClassSurface &surface = *vt->second;
            if (surface.module == from_module)
                continue; // intra-module access
            auto mt = surface.methods.find(member);
            if (mt == surface.methods.end())
                continue;

            AccessRecord record;
            record.class_name = surface.name;
            record.member = member;
            record.owner_module = surface.module;
            record.from_file = project.relative(file.path);
            record.line = i + 1;
            record.from_module = from_module;
            record.category =
                classifyAccess(surface, mt->second);

            std::vector<SharedStateMarker> markers =
                sharedStateMarkers(file.comments[i]);
            if (i > 0) {
                std::vector<SharedStateMarker> above =
                    sharedStateMarkers(file.comments[i - 1]);
                markers.insert(markers.end(), above.begin(),
                               above.end());
            }
            if (const SharedStateMarker *marker = markerFor(
                    markers, surface.name, member)) {
                record.annotated = true;
                if (marker->category == "event-queue-mediated")
                    record.category =
                        AccessCategory::EventQueueMediated;
                else if (marker->category == "stat-counter")
                    record.category = AccessCategory::StatCounter;
                else if (marker->category == "read")
                    record.category = AccessCategory::Read;
                else if (marker->category == "direct-mutation")
                    record.category =
                        AccessCategory::DirectMutation;
            }

            if (record.category ==
                    AccessCategory::DirectMutation &&
                !record.annotated) {
                findings.push_back(
                    {file.path, i + 1, "shared-state-mutation",
                     "direct mutation of " + surface.name +
                         "::" + member + " (module '" +
                         surface.module + "') from module '" +
                         from_module +
                         "'; a sharding hazard — route it through "
                         "the event queue or declare it with "
                         "beacon-lint: shared-state(" +
                         surface.name + "." + member +
                         ", direct-mutation)"});
            }
            records.push_back(std::move(record));
        }
    }
}

} // namespace

ShardMap
runSharedStatePass(const Project &project,
                   std::vector<Finding> &out)
{
    ShardMap map;

    const std::map<std::string, ClassSurface> surfaces =
        indexCoreSurfaces(project);

    for (const std::string &path : project.files) {
        std::string error;
        const SourceFile *file = project.cache->get(path, error);
        if (!file)
            continue;
        collectGlobals(*file, project, map.globals);
        resolveAccesses(*file, project, surfaces, map.accesses,
                        out);
    }

    for (const auto &[name, surface] : surfaces)
        map.classes.push_back(surface);
    std::sort(map.classes.begin(), map.classes.end(),
              [](const ClassSurface &a, const ClassSurface &b) {
                  return a.name < b.name;
              });
    std::sort(map.globals.begin(), map.globals.end(),
              [](const GlobalState &a, const GlobalState &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  return a.line < b.line;
              });
    std::sort(map.accesses.begin(), map.accesses.end(),
              [](const AccessRecord &a, const AccessRecord &b) {
                  if (a.from_file != b.from_file)
                      return a.from_file < b.from_file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.class_name != b.class_name)
                      return a.class_name < b.class_name;
                  return a.member < b.member;
              });
    return map;
}

} // namespace beacon_lint
