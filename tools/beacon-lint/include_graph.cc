/**
 * @file
 * The include/layer dependency pass.
 *
 * Extracts every project-internal `#include "..."` edge, maps both
 * endpoints to src/ modules, and enforces the architecture DAG:
 * an edge whose target module is neither the source module itself,
 * a tap module, nor in the source module's allowed dependency set is
 * a `layer-back-edge`. File-level include cycles (impossible to
 * compile headers aside, a cycle means the layering has collapsed)
 * are reported as `include-cycle` once per cycle, at the
 * lexicographically smallest participating file.
 */

#include "analysis.hh"

#include <filesystem>
#include <regex>

namespace fs = std::filesystem;

namespace beacon_lint
{

namespace
{

const char *const back_edge_name = "layer-back-edge";
const char *const cycle_name = "include-cycle";

/** Resolve one quoted include to an existing file, or "". */
std::string
resolveInclude(const Project &project, const std::string &from,
               const std::string &target)
{
    // Quoted project includes are spelled relative to src/ (the one
    // include directory CMake exports); same-directory includes are
    // the fallback for intra-module shorthand.
    const fs::path as_src = fs::path(project.root) / "src" / target;
    std::error_code ec;
    if (fs::is_regular_file(as_src, ec))
        return SourceCache::canonical(as_src.string());
    const fs::path sibling = fs::path(from).parent_path() / target;
    if (fs::is_regular_file(sibling, ec))
        return SourceCache::canonical(sibling.string());
    return "";
}

} // namespace

std::vector<IncludeEdge>
includeEdges(const Project &project)
{
    static const std::regex include_re(
        "^\\s*#\\s*include\\s*\"([^\"]+)\"");
    std::vector<IncludeEdge> edges;
    for (const std::string &path : project.files) {
        std::string error;
        const SourceFile *file = project.cache->get(path, error);
        if (!file)
            continue;
        for (std::size_t i = 0; i < file->lines(); ++i) {
            // Match the raw line: the lexer blanks string literals
            // in the code view, which hides the include target.
            std::smatch m;
            if (!std::regex_search(file->raw[i], m, include_re))
                continue;
            const std::string to =
                resolveInclude(project, path, m[1].str());
            if (!to.empty())
                edges.push_back({path, i + 1, to});
        }
    }
    return edges;
}

void
runIncludeGraphPass(const Project &project,
                    std::vector<Finding> &out)
{
    const std::vector<IncludeEdge> edges = includeEdges(project);

    // --- DAG enforcement -------------------------------------------
    for (const IncludeEdge &edge : edges) {
        const std::string from_mod = project.moduleOf(edge.from);
        const std::string to_mod = project.moduleOf(edge.to);
        if (from_mod.empty() || to_mod.empty() ||
            from_mod == to_mod)
            continue;
        if (isTapModule(to_mod) && !isTapModule(from_mod))
            continue; // any component may include a tap
        const std::set<std::string> *allowed =
            allowedDeps(from_mod);
        if (allowed && allowed->count(to_mod))
            continue;
        out.push_back(
            {edge.from, edge.line, back_edge_name,
             "module '" + from_mod + "' must not include '" +
                 project.relative(edge.to) + "' (module '" + to_mod +
                 "' is not in its allowed dependency set; see the "
                 "layer DAG in docs/static_analysis.md)"});
    }

    // --- cycle detection -------------------------------------------
    std::map<std::string, std::vector<const IncludeEdge *>> adjacency;
    for (const IncludeEdge &edge : edges)
        adjacency[edge.from].push_back(&edge);

    // Iterative DFS with an explicit colour map; a back edge to a
    // grey node closes a cycle. Each cycle is canonicalised by its
    // smallest member so overlapping traversals report it once.
    enum class Colour { White, Grey, Black };
    std::map<std::string, Colour> colour;
    std::set<std::vector<std::string>> reported;

    for (const std::string &rootFile : project.files) {
        if (colour.count(rootFile))
            continue;
        struct Frame
        {
            std::string node;
            std::size_t next = 0;
        };
        std::vector<Frame> stack{{rootFile, 0}};
        colour[rootFile] = Colour::Grey;
        while (!stack.empty()) {
            Frame &frame = stack.back();
            const auto &outgoing = adjacency[frame.node];
            if (frame.next >= outgoing.size()) {
                colour[frame.node] = Colour::Black;
                stack.pop_back();
                continue;
            }
            const IncludeEdge *edge = outgoing[frame.next++];
            auto it = colour.find(edge->to);
            if (it == colour.end()) {
                colour[edge->to] = Colour::Grey;
                stack.push_back({edge->to, 0});
                continue;
            }
            if (it->second != Colour::Grey)
                continue;
            // Extract the cycle: stack suffix from edge->to.
            std::vector<std::string> cycle;
            for (auto jt = stack.rbegin(); jt != stack.rend();
                 ++jt) {
                cycle.push_back(jt->node);
                if (jt->node == edge->to)
                    break;
            }
            std::vector<std::string> canon = cycle;
            std::sort(canon.begin(), canon.end());
            if (!reported.insert(canon).second)
                continue;
            const std::string &anchor = canon.front();
            // Report at the anchor's include line that participates.
            std::size_t line = 1;
            std::string next_in_cycle;
            for (std::size_t i = 0; i < cycle.size(); ++i) {
                if (cycle[i] != anchor)
                    continue;
                // cycle is in reverse DFS order: the node the
                // anchor includes is the previous element (or the
                // closing edge target for the first element).
                next_in_cycle = i == 0 ? edge->to : cycle[i - 1];
                // The DFS walks stack-backwards, so cycle[i - 1] is
                // actually the node that includes the anchor; find
                // the anchor's own outgoing edge inside the cycle
                // instead.
                break;
            }
            std::set<std::string> members(cycle.begin(),
                                          cycle.end());
            for (const IncludeEdge *candidate :
                 adjacency[anchor]) {
                if (members.count(candidate->to)) {
                    line = candidate->line;
                    next_in_cycle = candidate->to;
                    break;
                }
            }
            std::string names;
            for (const std::string &member : canon) {
                if (!names.empty())
                    names += ", ";
                names += project.relative(member);
            }
            out.push_back(
                {anchor, line, cycle_name,
                 "include cycle through {" + names + "}"});
        }
    }
}

} // namespace beacon_lint
