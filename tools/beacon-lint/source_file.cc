/**
 * @file
 * Comment/string stripper: a small state machine over the raw text
 * that produces the code view and the per-line comment text.
 */

#include "source_file.hh"

#include <fstream>
#include <sstream>

namespace beacon_lint
{

namespace
{

enum class State
{
    Code,
    LineComment,
    BlockComment,
    String,
    Char,
    RawString,
};

} // namespace

SourceFile
scanSource(const std::string &path, const std::string &text)
{
    SourceFile out;
    out.path = path;

    // Split into raw lines (keeping an empty trailing line out).
    {
        std::string line;
        std::istringstream in(text);
        while (std::getline(in, line))
            out.raw.push_back(line);
    }
    out.code.resize(out.raw.size());
    out.comments.resize(out.raw.size());

    State state = State::Code;
    std::string raw_delim; // raw-string delimiter, e.g. )foo"

    for (std::size_t li = 0; li < out.raw.size(); ++li) {
        const std::string &src = out.raw[li];
        std::string &code = out.code[li];
        std::string &comment = out.comments[li];
        code.assign(src.size(), ' ');

        if (state == State::LineComment)
            state = State::Code; // // comments end at the newline
        if (state == State::String || state == State::Char)
            state = State::Code; // unterminated literal: best effort

        for (std::size_t i = 0; i < src.size(); ++i) {
            const char c = src[i];
            const char next = i + 1 < src.size() ? src[i + 1] : '\0';
            switch (state) {
              case State::Code:
                if (c == '/' && next == '/') {
                    state = State::LineComment;
                    comment.append(src, i + 2,
                                   src.size() - (i + 2));
                    i = src.size(); // rest of line is comment
                } else if (c == '/' && next == '*') {
                    state = State::BlockComment;
                    ++i;
                } else if (c == '"' && i >= 1 && src[i - 1] == 'R') {
                    // R"delim( ... )delim"
                    const std::size_t open = src.find('(', i + 1);
                    raw_delim = ")";
                    if (open != std::string::npos)
                        raw_delim +=
                            src.substr(i + 1, open - (i + 1));
                    raw_delim += '"';
                    state = State::RawString;
                    code[i] = ' ';
                } else if (c == '"') {
                    state = State::String;
                } else if (c == '\'') {
                    state = State::Char;
                } else {
                    code[i] = c;
                }
                break;
              case State::String:
                if (c == '\\')
                    ++i;
                else if (c == '"')
                    state = State::Code;
                break;
              case State::Char:
                if (c == '\\')
                    ++i;
                else if (c == '\'')
                    state = State::Code;
                break;
              case State::BlockComment:
                if (c == '*' && next == '/') {
                    state = State::Code;
                    ++i;
                } else {
                    comment += c;
                }
                break;
              case State::RawString:
                if (src.compare(i, raw_delim.size(), raw_delim) ==
                    0) {
                    i += raw_delim.size() - 1;
                    state = State::Code;
                }
                break;
              case State::LineComment:
                break; // unreachable within a line
            }
        }
    }
    return out;
}

bool
loadSourceFile(const std::string &path, SourceFile &out,
               std::string &error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot open " + path;
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    out = scanSource(path, text.str());
    return true;
}

} // namespace beacon_lint
