/**
 * @file
 * `beacon-lanemap-1` JSON emission.
 *
 * Same determinism contract as the shard map: repo-relative paths
 * with forward slashes, arrays pre-sorted by the pass, fixed
 * 2-space-indent layout with '\n' line endings. The committed golden
 * (tools/beacon-lint/lanemap_golden.json) is diffed against a fresh
 * run by ctest and CI, so any change to the lane partition — a new
 * core class, a re-homed component, a fresh cross-lane access — is
 * reviewed as a diff of this artifact.
 */

#include "analysis.hh"

#include <sstream>

namespace beacon_lint
{

namespace
{

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            out += c;
        }
    }
    return out;
}

std::string
quoted(const std::string &text)
{
    return "\"" + jsonEscape(text) + "\"";
}

} // namespace

std::string
laneMapJson(const Project &, const LaneMap &map)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"schema\": \"beacon-lanemap-1\",\n";

    os << "  \"domains\": [\n";
    for (std::size_t i = 0; i < map.assignments.size(); ++i) {
        const LaneAssignment &a = map.assignments[i];
        os << "    {\"class\": " << quoted(a.class_name)
           << ", \"module\": " << quoted(a.module)
           << ", \"header\": " << quoted(a.header)
           << ", \"domain\": " << quoted(laneDomainName(a.domain))
           << ", \"hint_source\": " << quoted(a.hint_source) << "}"
           << (i + 1 < map.assignments.size() ? "," : "") << "\n";
    }
    os << "  ],\n";

    os << "  \"accesses\": [\n";
    for (std::size_t i = 0; i < map.accesses.size(); ++i) {
        const LaneAccess &access = map.accesses[i];
        os << "    {\"class\": " << quoted(access.class_name)
           << ", \"member\": " << quoted(access.member)
           << ", \"domain\": "
           << quoted(laneDomainName(access.domain))
           << ", \"from\": " << quoted(access.from_file)
           << ", \"line\": " << access.line
           << ", \"from_module\": " << quoted(access.from_module)
           << ", \"enclosing_domain\": "
           << quoted(laneDomainName(access.enclosing))
           << ", \"verdict\": "
           << quoted(laneVerdictName(access.verdict)) << "}"
           << (i + 1 < map.accesses.size() ? "," : "") << "\n";
    }
    os << "  ],\n";

    std::size_t same_lane = 0, mediated = 0, counters = 0,
                reads = 0, annotated = 0, violations = 0;
    for (const LaneAccess &access : map.accesses) {
        switch (access.verdict) {
          case LaneVerdict::SameLane:
            ++same_lane;
            break;
          case LaneVerdict::Mediated:
            ++mediated;
            break;
          case LaneVerdict::StatCounter:
            ++counters;
            break;
          case LaneVerdict::Read:
            ++reads;
            break;
          case LaneVerdict::Annotated:
            ++annotated;
            break;
          case LaneVerdict::Violation:
            ++violations;
            break;
        }
    }
    os << "  \"summary\": {\"same_lane\": " << same_lane
       << ", \"mediated\": " << mediated
       << ", \"stat_counter\": " << counters
       << ", \"read\": " << reads
       << ", \"annotated\": " << annotated
       << ", \"violation\": " << violations << "}\n";
    os << "}\n";
    return os.str();
}

} // namespace beacon_lint
