/**
 * @file
 * Process-wide cache of lexed source files.
 *
 * PR 4's driver lexed every path it was handed, so a header reached
 * through the compile database, an explicit path, *and* the include
 * closure was scanned up to three times and could emit the same
 * finding once per visit. The cache keys on the normalised absolute
 * path: every pass (per-file checks, include graph, shared-state
 * inventory) shares one SourceFile per distinct file on disk.
 */

#ifndef BEACON_LINT_SOURCE_CACHE_HH
#define BEACON_LINT_SOURCE_CACHE_HH

#include <map>
#include <string>

#include "source_file.hh"

namespace beacon_lint
{

/** Loads and lexes each distinct file exactly once. */
class SourceCache
{
  public:
    /**
     * The lexed view of @p path (normalised before lookup), or
     * nullptr when the file cannot be read (@p error is set; a
     * failed path is cached too, so one bad file errors once).
     */
    const SourceFile *get(const std::string &path,
                          std::string &error);

    /** Normalised absolute form used as the cache key. */
    static std::string canonical(const std::string &path);

    /** Number of distinct files lexed so far (cache misses). */
    std::size_t filesLexed() const { return lexed; }

    /** Number of get() calls served from the cache. */
    std::size_t cacheHits() const { return hits; }

  private:
    struct Slot
    {
        bool ok = false;
        std::string error;
        SourceFile file;
    };

    std::map<std::string, Slot> slots;
    std::size_t lexed = 0;
    std::size_t hits = 0;
};

} // namespace beacon_lint

#endif // BEACON_LINT_SOURCE_CACHE_HH
