#!/usr/bin/env python3
"""Summarise a BEACON Chrome/Perfetto trace on the command line.

Usage:
    tools/trace_summary.py out/multi_tenant_qos_small_fcfs.trace.json

Prints, without needing the Perfetto UI: per-track span counts and
busy time (sum of 'X' durations), instant/counter event counts, the
busiest tracks first, and the ring-buffer drop counter so truncated
traces are obvious. Uses only the Python standard library.
"""

import argparse
import collections
import json
import sys


def load_tracks(trace):
    """Map tid -> track name from the metadata events."""
    names = {}
    for ev in trace["traceEvents"]:
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            names[ev["tid"]] = ev["args"]["name"]
    return names


def summarise(trace):
    tracks = load_tracks(trace)
    spans = collections.Counter()
    busy_us = collections.Counter()
    instants = collections.Counter()
    counters = collections.Counter()
    t_min, t_max = None, 0.0
    for ev in trace["traceEvents"]:
        ph = ev.get("ph")
        if ph not in ("X", "i", "C"):
            continue
        track = tracks.get(ev["tid"], f"tid{ev['tid']}")
        ts = float(ev["ts"])
        t_min = ts if t_min is None else min(t_min, ts)
        if ph == "X":
            spans[track] += 1
            busy_us[track] += float(ev.get("dur", 0))
            t_max = max(t_max, ts + float(ev.get("dur", 0)))
        elif ph == "i":
            instants[track] += 1
            t_max = max(t_max, ts)
        else:
            counters[track] += 1
            t_max = max(t_max, ts)
    return tracks, spans, busy_us, instants, counters, t_min, t_max


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="*.trace.json file")
    parser.add_argument("--top", type=int, default=20,
                        help="tracks to list (default 20)")
    args = parser.parse_args()

    with open(args.trace) as handle:
        trace = json.load(handle)

    (tracks, spans, busy_us, instants,
     counters, t_min, t_max) = summarise(trace)
    other = trace.get("otherData", {})

    span_total = sum(spans.values())
    window = (t_max - t_min) if t_min is not None else 0.0
    print(f"{args.trace}: {len(tracks)} tracks, "
          f"{span_total} spans, {sum(instants.values())} instants, "
          f"{sum(counters.values())} counter samples")
    if t_min is not None:
        print(f"time window: {t_min:.3f} .. {t_max:.3f} us "
              f"({window:.3f} us)")
    dropped = int(other.get("dropped_events", 0))
    if dropped:
        print(f"WARNING: ring buffer dropped {dropped} events — "
              f"oldest activity is missing; raise "
              f"trace_buffer_events")

    ranked = sorted(set(spans) | set(instants) | set(counters),
                    key=lambda t: -busy_us[t])
    print(f"\n{'track':<28}{'spans':>8}{'busy us':>12}"
          f"{'busy %':>8}{'inst':>6}{'ctr':>6}")
    for track in ranked[:args.top]:
        share = (100.0 * busy_us[track] / window) if window else 0.0
        print(f"{track:<28}{spans[track]:>8}"
              f"{busy_us[track]:>12.3f}{share:>7.1f}%"
              f"{instants[track]:>6}{counters[track]:>6}")
    if len(ranked) > args.top:
        print(f"... {len(ranked) - args.top} more tracks "
              f"(--top to widen)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
